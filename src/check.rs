//! The corpus runner behind `nestdb analyze`: run the static analyzer over
//! query files and assemble one machine-readable report.
//!
//! Shared between the CLI (`nestdb analyze --format json data/*.calc`) and
//! the golden-snapshot tests, so CI and the test suite gate on exactly the
//! same JSON. File dialects by extension: `.dl` is one Datalog¬ program;
//! anything else is a CALC query file — one query per non-empty,
//! non-`%`-comment line.

use crate::session::Session;
use no_object::text::parse_database;
use no_object::{Instance, Universe};
use no_proto::{AnalysisOut, Lang, Op, Request};
use no_storage::DbOptions;
use std::fmt::Write as _;
use std::path::Path;

/// A database loaded for a CLI run (`--db`, `nestdb open`, `nestdb
/// verify`): the interned universe, the instance, and a one-line
/// provenance summary.
#[derive(Debug, Clone)]
pub struct LoadedDb {
    /// The universe the instance's atoms are interned in.
    pub universe: Universe,
    /// The loaded instance (its schema travels inside).
    pub instance: Instance,
    /// One line of provenance for logs: where it came from and what
    /// recovery did.
    pub summary: String,
}

/// Load the database behind a path argument, dispatching on what the
/// path is: a **directory** is a durable database (opened read-only
/// through full crash recovery — snapshot + write-ahead-log replay,
/// structured errors on corruption); anything else is a text-format file
/// (`schema R(U).` declarations and facts). This is the one loading path
/// shared by `nestdb analyze --db`, `nestdb explain --db`, `nestdb
/// open`, and `nestdb verify`.
pub fn load_database(path: &str) -> Result<LoadedDb, String> {
    let p = Path::new(path);
    if p.is_dir() {
        let db = no_storage::Db::open(p, DbOptions::default()).map_err(|e| e.to_string())?;
        let stats = db.open_stats();
        let summary = format!(
            "opened durable database {path}: {} relations, {} tuples \
             (snapshot epoch {}, {} frames replayed)",
            db.instance().schema().len(),
            db.instance().cardinality(),
            stats.snapshot_epoch,
            stats.replayed_frames,
        );
        Ok(LoadedDb {
            universe: db.universe().clone(),
            instance: db.instance().clone(),
            summary,
        })
    } else {
        let src = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
        let mut universe = Universe::new();
        let (schema, instance) =
            parse_database(&src, &mut universe).map_err(|e| format!("{path}: {e}"))?;
        let summary = format!(
            "loaded {path}: {} relations, {} tuples",
            schema.len(),
            instance.cardinality(),
        );
        Ok(LoadedDb {
            universe,
            instance,
            summary,
        })
    }
}

/// One analyzed query of a corpus.
#[derive(Debug, Clone)]
pub struct CorpusEntry {
    /// The file the query came from.
    pub file: String,
    /// 1-based line of the query within its file (always 1 for `.dl`
    /// programs, which are analyzed whole).
    pub line: usize,
    /// The analyzed source text.
    pub source: String,
    /// The analyzer's findings and certificate, in wire form (the JSON
    /// field is the analyzer's own rendering, spliced verbatim into
    /// [`CorpusReport::to_json`], so reports are byte-stable across the
    /// protocol boundary).
    pub analysis: AnalysisOut,
}

/// The report over a whole corpus.
#[derive(Debug, Clone, Default)]
pub struct CorpusReport {
    /// Every analyzed query, in file order then line order.
    pub entries: Vec<CorpusEntry>,
}

impl CorpusReport {
    /// Analyze one file's worth of queries against the session's store
    /// (schema and universe) and append the entries. Each query is one
    /// `op: Analyze` request through [`Session::run`] — the same path the
    /// server and shell take.
    pub fn add_file(&mut self, session: &Session, name: &str, src: &str) {
        let analyze = |lang: Lang, text: &str| {
            let resp = session.run(&Request {
                op: Op::Analyze,
                lang,
                text: text.to_string(),
                ..Request::default()
            });
            resp.analysis.expect("analyze responses carry findings")
        };
        if name.ends_with(".dl") {
            self.entries.push(CorpusEntry {
                file: name.to_string(),
                line: 1,
                source: src.to_string(),
                analysis: analyze(Lang::Datalog, src),
            });
            return;
        }
        for (idx, line) in src.lines().enumerate() {
            let query = line.trim();
            if query.is_empty() || query.starts_with('%') {
                continue;
            }
            self.entries.push(CorpusEntry {
                file: name.to_string(),
                line: idx + 1,
                source: query.to_string(),
                analysis: analyze(Lang::Calc, query),
            });
        }
    }

    /// Count of diagnostics across the corpus, split `(errors, warnings)`.
    pub fn diagnostic_counts(&self) -> (usize, usize) {
        let mut errors = 0usize;
        let mut warnings = 0usize;
        for e in &self.entries {
            errors += e.analysis.errors as usize;
            warnings += e.analysis.warnings as usize;
        }
        (errors, warnings)
    }

    /// Whether any query has any diagnostic at all — the deny-mode gate.
    pub fn has_diagnostics(&self) -> bool {
        self.entries
            .iter()
            .any(|e| e.analysis.errors + e.analysis.warnings > 0)
    }

    /// Whether every query received a certificate.
    pub fn all_certified(&self) -> bool {
        self.entries.iter().all(|e| e.analysis.certified)
    }

    /// The JSON report: an array of
    /// `{"file", "line", "source", "analysis"}` objects.
    pub fn to_json(&self) -> String {
        let mut out = String::from("[");
        for (i, e) in self.entries.iter().enumerate() {
            if i > 0 {
                out.push_str(",\n ");
            }
            let _ = write!(
                out,
                "{{\"file\": {}, \"line\": {}, \"source\": {}, \"analysis\": {}}}",
                json_esc(&e.file),
                e.line,
                json_esc(&e.source),
                e.analysis.json,
            );
        }
        out.push(']');
        out
    }

    /// The human report: per-query caret-rendered diagnostics and
    /// certificate summaries, then a one-line tally.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for e in &self.entries {
            let _ = writeln!(out, "── {}:{}", e.file, e.line);
            for line in e.analysis.text.lines() {
                let _ = writeln!(out, "  {line}");
            }
        }
        let (errors, warnings) = self.diagnostic_counts();
        let certified = self.entries.iter().filter(|e| e.analysis.certified).count();
        let _ = write!(
            out,
            "{} queries analyzed: {certified} certified, {errors} error(s), {warnings} warning(s)",
            self.entries.len(),
        );
        out
    }
}

fn json_esc(s: &str) -> String {
    // local copy of the analyzer's escaper (its json module is private)
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::Store;
    use no_object::{Instance, RelationSchema, Schema, Type};
    use std::sync::{Arc, RwLock};

    fn graph_session() -> Session {
        let schema =
            Schema::from_relations([RelationSchema::new("G", vec![Type::Atom, Type::Atom])]);
        let store = Store::with_data(Universe::new(), Instance::empty(schema));
        Session::builder()
            .store(Arc::new(RwLock::new(store)))
            .build()
    }

    #[test]
    fn calc_files_split_per_line_and_skip_comments() {
        let s = graph_session();
        let mut report = CorpusReport::default();
        report.add_file(
            &s,
            "q.calc",
            "% header\n{[x:U, y:U] | G(x, y)}\n\n{[x:U] | H(x)}\n",
        );
        assert_eq!(report.entries.len(), 2);
        assert_eq!(report.entries[0].line, 2);
        assert_eq!(report.entries[0].analysis.errors, 0);
        assert_eq!(report.entries[1].line, 4);
        assert!(report.entries[1].analysis.errors > 0);
        assert!(report.has_diagnostics());
        assert!(!report.all_certified());
        assert_eq!(report.diagnostic_counts(), (1, 0));
    }

    #[test]
    fn dl_files_are_one_program() {
        let s = graph_session();
        let mut report = CorpusReport::default();
        report.add_file(&s, "tc.dl", "rel tc(U, U).\ntc(x, y) :- G(x, y).");
        assert_eq!(report.entries.len(), 1);
        assert!(report.all_certified());
        assert!(!report.has_diagnostics());
    }

    #[test]
    fn json_and_text_reports() {
        let s = graph_session();
        let mut report = CorpusReport::default();
        report.add_file(&s, "q.calc", "{[x:U, y:U] | G(x, y)}");
        let j = report.to_json();
        assert!(j.starts_with("[{\"file\": \"q.calc\", \"line\": 1"), "{j}");
        assert!(j.contains("\"status\": \"ok\""), "{j}");
        assert!(j.ends_with("}]"), "{j}");
        let t = report.render_text();
        assert!(t.contains("── q.calc:1"), "{t}");
        assert!(
            t.contains("1 queries analyzed: 1 certified, 0 error(s), 0 warning(s)"),
            "{t}"
        );
    }
}
