//! `nestdb` — umbrella crate re-exporting the full public API of the
//! reproduction of Grumbach & Vianu, *Tractable Query Languages for Complex
//! Object Databases* (PODS 1991).
//!
//! See the individual crates for the substrate layers:
//! - [`object`]: complex-object values, types, ranked domains, encodings
//! - [`algebra`]: nested-relational algebra operators (nest/unnest/powerset)
//! - [`core`]: the CALC query language, IFP/PFP fixpoints, range restriction
//! - [`tm`]: Turing machines and the relational simulation of Theorem 4.1
//! - [`datalog`]: inflationary Datalog over complex objects
//! - [`density`]: instance families and density/sparsity analysis
//! - [`exec`]: columnar execution kernels — hash/merge/nested-loop joins
//!   over per-column id vectors, picked per join by the planner
//! - [`analysis`]: static analyzer — diagnostics and complexity certificates
//! - [`plan`]: the logical/physical query-plan IR, optimizer passes, plan
//!   cache, and `:explain` renderings shared by every engine
//! - [`storage`]: durable databases — checksummed write-ahead log, `enc(I)`
//!   snapshots, and crash-anywhere recovery

pub use no_algebra as algebra;
pub use no_analysis as analysis;
pub use no_core as core;
pub use no_datalog as datalog;
pub use no_density as density;
pub use no_exec as exec;
pub use no_ivm as ivm;
pub use no_object as object;
pub use no_plan as plan;
pub use no_proto as proto;
pub use no_server as server;
pub use no_storage as storage;
pub use no_tm as tm;

pub mod check;
pub mod error;
pub mod service;
pub mod session;
pub mod shell;

pub use error::Error;
pub use minipool::ThreadPool;
pub use proto::{Request, Response};
pub use session::{ExplainTarget, Session, SessionBuilder, Store};
