//! The interactive shell behind the `nestdb` binary — in the library so
//! its command loop is unit-testable.
//!
//! ```text
//! $ cargo run --bin nestdb -- mydb.no
//! nestdb> {[x:U, y:U] | G(x, y)}
//! nestdb> :classify {[u:U, v:U] | ifp(S; x:U, y:U | G(x,y) \/ exists z:U (S(x,z) /\ G(z,y)))(u, v)}
//! nestdb> :datalog rules.dl
//! nestdb> :help
//! ```
//!
//! Databases use the text format of `no_object::text` (`schema R(U, {U}).`
//! followed by facts); queries use the CALC concrete syntax; Datalog files
//! use the `no_datalog::parser` syntax. Queries are evaluated with safe
//! (range-restricted) evaluation by default, falling back to active
//! domains per variable, under configurable budgets.

use crate::session::Session;
use no_core::error::EvalConfig;
use no_core::parser::parse_query;
use no_core::print::Printer;
use no_core::report::{classify, InputAssumption};
use no_datalog as datalog;
use no_object::text::{parse_clause, parse_database, render_database, Clause};
use no_object::{Governor, Instance, Schema, Universe, Value};
use no_storage::{Db, DbOptions};
use std::time::{Duration, Instant};

/// The shell: a universe, a database, budgets, and an evaluation mode.
/// With `:open` the database becomes durable — a [`Db`] backed by a
/// snapshot + write-ahead log directory owns the state, mutations are
/// logged before they apply, and the in-memory fields sit unused until
/// the store is detached.
pub struct Shell {
    universe: Universe,
    instance: Instance,
    /// A durable store, when one is attached via `:open`.
    db: Option<Db>,
    config: EvalConfig,
    active_domain: bool,
    threads: usize,
}

impl Shell {
    /// A fresh shell with an empty database.
    pub fn new() -> Self {
        Shell {
            universe: Universe::new(),
            instance: Instance::empty(Schema::new()),
            db: None,
            config: EvalConfig::default(),
            active_domain: false,
            threads: 1,
        }
    }

    /// The live universe: the durable store's when one is attached.
    fn uni(&self) -> &Universe {
        match &self.db {
            Some(db) => db.universe(),
            None => &self.universe,
        }
    }

    /// Mutable universe access (parsing interns atoms). Sound against a
    /// durable store: the universe is append-only and replay re-interns
    /// atom names from the logged clauses themselves.
    fn uni_mut(&mut self) -> &mut Universe {
        match &mut self.db {
            Some(db) => db.universe_mut(),
            None => &mut self.universe,
        }
    }

    /// The live instance: the durable store's when one is attached.
    fn inst(&self) -> &Instance {
        match &self.db {
            Some(db) => db.instance(),
            None => &self.instance,
        }
    }

    /// A fresh [`Session`] for one evaluation: current budgets as a fresh
    /// governor allowance, current worker count.
    fn session(&self) -> Session {
        Session::builder()
            .governor(self.config.governor())
            .parallelism(self.threads)
            .build()
    }

    /// Load a database file (text format). Without a durable store this
    /// replaces the in-memory database; with one attached it imports the
    /// file's declarations and facts into the store (logged, durable).
    pub fn load(&mut self, path: &str) -> Result<String, String> {
        let src = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
        if let Some(db) = &mut self.db {
            let stats = db.import_text(&src).map_err(|e| e.to_string())?;
            return Ok(format!(
                "imported {path} into {}: +{} relations, +{} tuples",
                db.dir().display(),
                stats.relations_added,
                stats.tuples_added
            ));
        }
        let (schema, instance) =
            parse_database(&src, &mut self.universe).map_err(|e| e.to_string())?;
        let summary = format!(
            "loaded {}: {} relations, {} tuples, {} atoms",
            path,
            schema.len(),
            instance.cardinality(),
            instance.atoms().len()
        );
        self.instance = instance;
        Ok(summary)
    }

    /// Attach the durable database at `dir` (creating it if absent),
    /// running full crash recovery under the shell's budgets.
    fn open_db(&mut self, dir: &str) -> Result<String, String> {
        if dir.is_empty() {
            return Err(":open needs a database directory (try :help)".to_string());
        }
        let options = DbOptions {
            governor: Some(self.config.governor()),
            ..DbOptions::default()
        };
        let db = Db::open(std::path::Path::new(dir), options).map_err(|e| e.to_string())?;
        let stats = db.open_stats().clone();
        let inst = db.instance();
        let mut out = if stats.created {
            format!("created durable database at {dir}")
        } else {
            format!(
                "opened {dir}: {} relations, {} tuples, {} atoms (snapshot epoch {}, {} frames replayed)",
                inst.schema().len(),
                inst.cardinality(),
                db.universe().len(),
                stats.snapshot_epoch,
                stats.replayed_frames,
            )
        };
        if stats.truncated_bytes > 0 {
            out.push_str(&format!(
                "\nrecovered: {} bytes of torn write-ahead-log tail truncated",
                stats.truncated_bytes
            ));
        }
        if stats.stale_wal_discarded {
            out.push_str("\nrecovered: stale write-ahead log discarded (already in snapshot)");
        }
        self.db = Some(db);
        Ok(out)
    }

    /// `:insert <clause>` — apply one `schema R(U).` declaration or one
    /// fact. Logged first when a durable store is attached.
    fn insert_clause(&mut self, src: &str) -> Result<String, String> {
        if src.is_empty() {
            return Err(":insert needs a clause like G('a', 'b'). (try :help)".to_string());
        }
        let clause = parse_clause(src, self.uni_mut()).map_err(|e| e.to_string())?;
        if let Some(db) = &mut self.db {
            return match clause {
                Clause::Schema(rel) => {
                    let name = rel.name.clone();
                    db.declare(rel).map_err(|e| e.to_string())?;
                    Ok(format!("declared {name} (logged)"))
                }
                Clause::Fact(name, row) => {
                    let fresh = db.insert(&name, row).map_err(|e| e.to_string())?;
                    Ok(if fresh {
                        format!("inserted into {name} (logged)")
                    } else {
                        format!("already in {name} (nothing logged)")
                    })
                }
            };
        }
        match clause {
            Clause::Schema(rel) => {
                if self.instance.schema().get(&rel.name).is_some() {
                    return Err(format!("relation {:?} is already declared", rel.name));
                }
                let name = rel.name.clone();
                let mut schema = Schema::new();
                for r in self.instance.schema().relations() {
                    schema.add(r.clone());
                }
                schema.add(rel);
                let mut next = Instance::empty(schema);
                for r in self.instance.schema().relations() {
                    next.set_relation(&r.name, self.instance.relation(&r.name).clone());
                }
                self.instance = next;
                Ok(format!("declared {name}"))
            }
            Clause::Fact(name, row) => {
                let (arity, col_types) = match self.instance.schema().get(&name) {
                    Some(r) => (r.arity(), r.column_types.clone()),
                    None => return Err(format!("unknown relation {name:?}")),
                };
                if arity != row.len() {
                    return Err(format!(
                        "relation {name:?} has arity {arity} but the tuple has {} values",
                        row.len()
                    ));
                }
                for (v, t) in row.iter().zip(col_types.iter()) {
                    if !v.has_type(t) {
                        return Err(format!("value is not of type {t} in relation {name:?}"));
                    }
                }
                let fresh = self.instance.insert(&name, row);
                Ok(if fresh {
                    format!("inserted into {name}")
                } else {
                    format!("already in {name}")
                })
            }
        }
    }

    fn render_row(&self, row: &[Value]) -> String {
        let printer = Printer::with_universe(self.uni());
        let cells: Vec<String> = row.iter().map(|v| printer.value(v)).collect();
        format!("({})", cells.join(", "))
    }

    /// Render a tripped budget: which budget, where, and how much of each
    /// allowance was consumed. The shell stays alive after showing this.
    fn budget_diagnostic(&self, governor: &Governor, err: &dyn std::fmt::Display) -> String {
        let show = |v: u64| {
            if v == u64::MAX {
                "unlimited".to_string()
            } else {
                v.to_string()
            }
        };
        let limits = governor.limits();
        let deadline = match limits.deadline {
            Some(d) => format!("{} ms", d.as_millis()),
            None => "unlimited".to_string(),
        };
        format!(
            "{err}\nbudgets: steps {}/{}, memory {}/{} bytes, elapsed {:.1} ms (deadline {})\n\
             the database is unchanged; raise :budget, :mem or :deadline, or simplify the query",
            governor.steps_spent(),
            show(limits.max_steps),
            governor.mem_spent(),
            show(limits.max_memory_bytes),
            governor.elapsed().as_secs_f64() * 1e3,
            deadline,
        )
    }

    fn run_query(&mut self, src: &str) -> Result<String, String> {
        let query = parse_query(src, self.uni_mut()).map_err(|e| e.render(src))?;
        let t = Instant::now();
        let session = self.session();
        let result = if self.active_domain {
            session.eval_calc(self.inst(), &query)
        } else {
            session.eval_calc_safe(self.inst(), &query)
        };
        let answer = result.map_err(|e| match e.resource() {
            Some(r) => self.budget_diagnostic(session.governor(), r),
            None => e.to_string(),
        })?;
        let mut out = String::new();
        for row in answer.sorted_rows() {
            out.push_str(&self.render_row(row));
            out.push('\n');
        }
        out.push_str(&format!(
            "{} rows in {:.1} ms ({})",
            answer.len(),
            t.elapsed().as_secs_f64() * 1e3,
            if self.active_domain {
                "active-domain"
            } else {
                "safe"
            },
        ));
        Ok(out)
    }

    fn classify_query(&mut self, src: &str) -> Result<String, String> {
        let query = parse_query(src, self.uni_mut()).map_err(|e| e.render(src))?;
        let mut out = String::new();
        for (label, assumption) in [
            ("no assumption", InputAssumption::Unknown),
            ("dense inputs ", InputAssumption::Dense),
        ] {
            let report =
                classify(self.inst().schema(), &query, assumption).map_err(|e| e.to_string())?;
            out.push_str(&format!(
                "{label}: {} → {} (by {})\n",
                report.language, report.bound.bound, report.bound.by
            ));
            if !report.unrestricted_vars.is_empty() {
                out.push_str(&format!(
                    "  unrestricted variables: {}\n",
                    report.unrestricted_vars.join(", ")
                ));
            }
        }
        Ok(out.trim_end().to_string())
    }

    fn explain_query(&mut self, src: &str) -> Result<String, String> {
        use no_core::nf;
        use no_core::ranges::compute_ranges;
        use no_core::typeck;
        let query = parse_query(src, self.uni_mut()).map_err(|e| e.render(src))?;
        let checked = typeck::check(self.inst().schema(), &query.head, &query.body)
            .map_err(|e| e.to_string())?;
        let m = nf::metrics(&query.body);
        let mut out = format!(
            "CALC_{}^{} formula: {} nodes, quantifier rank {}, fixpoint depth {}
",
            checked.set_height, checked.tuple_width, m.size, m.quantifier_rank, m.fixpoint_depth
        );
        match compute_ranges(self.inst(), &checked.var_types, &query.body, &self.config) {
            Ok(ranges) => {
                out.push_str(
                    "computed ranges (Theorem 5.1):
",
                );
                let mut any = false;
                for (path, vals) in ranges.iter() {
                    any = true;
                    out.push_str(&format!(
                        "  r({path}): {} candidates
",
                        vals.len()
                    ));
                }
                if !any {
                    out.push_str(
                        "  (none — evaluation falls back to active domains)
",
                    );
                }
                for (v, ty) in checked.var_types.iter() {
                    if ranges.of_var(v).is_none() {
                        out.push_str(&format!(
                            "  {v}:{ty} unrestricted → active domain
"
                        ));
                    }
                }
            }
            Err(e) => out.push_str(&format!(
                "range computation refused: {e}
"
            )),
        }
        // The compiled, optimized plan (cache-backed in long-lived
        // sessions; the shell builds a session per evaluation, so this
        // always shows a cold compile).
        let session = self.session();
        let mode = if self.active_domain {
            no_plan::CalcMode::ActiveDomain
        } else {
            no_plan::CalcMode::Safe
        };
        match session.explain(
            self.inst(),
            crate::session::ExplainTarget::Calc {
                query: &query,
                mode,
            },
        ) {
            Ok(planned) => {
                out.push('\n');
                out.push_str(&planned.render_text());
            }
            Err(e) => out.push_str(&format!("planning refused: {e}\n")),
        }
        Ok(out.trim_end().to_string())
    }

    /// `:check` — static analysis only. The argument is a `.dl` file path
    /// (Datalog¬) or inline CALC query text. Never evaluates, so it works
    /// under any budget and any `:threads` setting.
    fn check_input(&mut self, arg: &str) -> Result<String, String> {
        if arg.is_empty() {
            return Err(":check needs a query or a .dl file (try :help)".to_string());
        }
        let session = self.session();
        // Clone the schema up front: analysis needs the universe mutably
        // and the (Arc-backed, cheap) schema immutably at once.
        let schema = self.inst().schema().clone();
        let (src, analysis) = if arg.ends_with(".dl") {
            let src =
                std::fs::read_to_string(arg).map_err(|e| format!("cannot read {arg}: {e}"))?;
            let a = session.analyze_datalog(&schema, &src, self.uni_mut());
            (src, a)
        } else {
            let a = session.analyze(&schema, arg, self.uni_mut());
            (arg.to_string(), a)
        };
        debug_assert_eq!(
            session.governor().steps_spent(),
            0,
            "analysis must not spend evaluation fuel"
        );
        Ok(analysis.render(&src))
    }

    fn run_datalog(&mut self, path: &str) -> Result<String, String> {
        let (path, stratified) = match path.strip_suffix(" stratified") {
            Some(p) => (p.trim(), true),
            None => (path, false),
        };
        let src = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
        let program = datalog::parse_program(&src, self.uni_mut()).map_err(|e| e.render(&src))?;
        let t = Instant::now();
        let session = self.session();
        let trip = |e: crate::error::Error| match e.resource() {
            Some(r) => self.budget_diagnostic(session.governor(), r),
            None => e.to_string(),
        };
        let (idb, stats) = if stratified {
            let idb = session
                .eval_datalog_stratified(&program, self.inst())
                .map_err(trip)?;
            let facts = idb.values().map(|r| r.len()).sum();
            (
                idb,
                datalog::EvalStats {
                    rounds: 0,
                    facts,
                    joins: 0,
                },
            )
        } else {
            session
                .eval_datalog(&program, self.inst(), datalog::Strategy::SemiNaive)
                .map_err(trip)?
        };
        let mut out = String::new();
        for (name, rel) in &idb {
            out.push_str(&format!("{name}: {} facts\n", rel.len()));
            for row in rel.sorted_rows().into_iter().take(20) {
                out.push_str(&format!("  {}\n", self.render_row(row)));
            }
            if rel.len() > 20 {
                out.push_str("  …\n");
            }
        }
        out.push_str(&format!(
            "{} rounds, {} facts, {:.1} ms",
            stats.rounds,
            stats.facts,
            t.elapsed().as_secs_f64() * 1e3
        ));
        Ok(out)
    }

    /// Execute one input line: a `:command` or a CALC query.
    ///
    /// `Ok(Some(text))` is output to show, `Ok(None)` a no-op (blank or
    /// comment), `Err("quit")` the quit signal, any other `Err` an error
    /// message to display.
    pub fn command(&mut self, line: &str) -> Result<Option<String>, String> {
        let line = line.trim();
        if line.is_empty() || line.starts_with('%') {
            return Ok(None);
        }
        if let Some(rest) = line.strip_prefix(':') {
            let (cmd, arg) = rest.split_once(' ').unwrap_or((rest, ""));
            let arg = arg.trim();
            return match cmd {
                "help" | "h" => Ok(Some(HELP.to_string())),
                "quit" | "q" => Err("quit".to_string()),
                "load" => self.load(arg).map(Some),
                "open" => self.open_db(arg).map(Some),
                "insert" => self.insert_clause(arg).map(Some),
                "sync" => match &mut self.db {
                    Some(db) => {
                        db.sync().map_err(|e| e.to_string())?;
                        Ok(Some(format!(
                            "write-ahead log fsynced ({} frames, epoch {})",
                            db.wal_frames(),
                            db.epoch()
                        )))
                    }
                    None => Err("no durable database attached (use :open <dir>)".to_string()),
                },
                "close" => match self.db.take() {
                    Some(db) => Ok(Some(format!("detached {}", db.dir().display()))),
                    None => Err("no durable database attached".to_string()),
                },
                "save" => match (&mut self.db, arg.is_empty()) {
                    // With a store attached and no path: checkpoint.
                    (Some(db), true) => {
                        db.save().map_err(|e| e.to_string())?;
                        Ok(Some(format!(
                            "checkpointed {} at epoch {} (write-ahead log reset)",
                            db.dir().display(),
                            db.epoch()
                        )))
                    }
                    (None, true) => {
                        Err(":save needs a file path (or :open a durable database)".to_string())
                    }
                    // With a path: write the text format, from either mode.
                    _ => {
                        let text = render_database(self.uni(), self.inst());
                        std::fs::write(arg, &text)
                            .map_err(|e| format!("cannot write {arg}: {e}"))?;
                        Ok(Some(format!(
                            "saved {} tuples to {arg}",
                            self.inst().cardinality()
                        )))
                    }
                },
                "db" => Ok(Some(render_database(self.uni(), self.inst()))),
                "schema" => {
                    let mut out = String::new();
                    for r in self.inst().schema().relations() {
                        let cols: Vec<String> =
                            r.column_types.iter().map(ToString::to_string).collect();
                        out.push_str(&format!("{}({})\n", r.name, cols.join(", ")));
                    }
                    let (i, k) = self.inst().schema().ik();
                    out.push_str(&format!("an <{i},{k}>-database schema"));
                    Ok(Some(out))
                }
                "classify" => self.classify_query(arg).map(Some),
                "explain" => self.explain_query(arg).map(Some),
                "check" => self.check_input(arg).map(Some),
                "datalog" => self.run_datalog(arg).map(Some),
                "budget" => match arg.parse::<u64>() {
                    Ok(n) => {
                        self.config.max_range = n;
                        Ok(Some(format!("max quantifier range set to {n}")))
                    }
                    Err(_) => Err(format!("not a number: {arg}")),
                },
                "deadline" => match arg.parse::<u64>() {
                    Ok(0) => {
                        self.config.deadline = None;
                        Ok(Some("deadline cleared (unlimited wall clock)".to_string()))
                    }
                    Ok(ms) => {
                        self.config.deadline = Some(Duration::from_millis(ms));
                        Ok(Some(format!("deadline set to {ms} ms per evaluation")))
                    }
                    Err(_) => Err(format!("not a number of milliseconds: {arg}")),
                },
                "threads" => match arg.parse::<usize>() {
                    Ok(n) if n >= 1 => {
                        self.threads = n;
                        Ok(Some(format!(
                            "worker threads set to {n}{}",
                            if n == 1 { " (sequential)" } else { "" }
                        )))
                    }
                    Ok(_) => Err("need at least 1 thread".to_string()),
                    Err(_) => Err(format!("not a thread count: {arg}")),
                },
                "mem" => match arg.parse::<u64>() {
                    Ok(0) => {
                        self.config.max_memory_bytes = u64::MAX;
                        Ok(Some("memory budget cleared (unlimited)".to_string()))
                    }
                    Ok(bytes) => {
                        self.config.max_memory_bytes = bytes;
                        Ok(Some(format!(
                            "memory budget set to {bytes} bytes of materialised values"
                        )))
                    }
                    Err(_) => Err(format!("not a number of bytes: {arg}")),
                },
                "active" => {
                    self.active_domain = !self.active_domain;
                    Ok(Some(format!(
                        "evaluation mode: {}",
                        if self.active_domain {
                            "active-domain"
                        } else {
                            "safe (range-restricted)"
                        }
                    )))
                }
                other => Err(format!("unknown command :{other} (try :help)")),
            };
        }
        self.run_query(line).map(Some)
    }
}

const HELP: &str = "\
queries:   {[x:U, y:{U}] | Friends(x, y) /\\ ...}   evaluate a CALC query
commands:
  :load <file>       load a database (text format: schema R(U). R('a').)
                     (with a store attached: import into it, logged)
  :open <dir>        attach a durable database (snapshot + write-ahead log,
                     created if absent; crash recovery runs on open)
  :insert <clause>   apply one clause — schema R(U). or R('a'). — logged
                     to the write-ahead log when a store is attached
  :save              checkpoint the attached store (snapshot + log reset)
  :save <file>       write the database back out in the text format
  :sync              fsync the write-ahead log now
  :close             detach the durable database (files stay on disk)
  :schema            show the schema and its <i,k> classification
  :db                dump the database
  :classify <query>  language fragment + complexity bound (paper theorems)
  :explain <query>   formula metrics, safe-evaluation ranges + the optimized
                     query plan (passes, estimates, early-trip warnings)
  :check <query|file.dl>   static analysis: spanned diagnostics with paper
                     citations + a <i,k> complexity certificate (no evaluation)
  :datalog <file> [stratified]   run a Datalog¬ program (default: inflationary)
  :active            toggle active-domain vs safe evaluation
  :budget <n>        set the quantifier-range budget
  :deadline <ms>     wall-clock limit per evaluation (0 = unlimited)
  :mem <bytes>       memory budget for materialised values (0 = unlimited)
  :threads <n>       worker threads for parallel evaluation (1 = sequential)
  :help  :quit";

impl Default for Shell {
    fn default() -> Self {
        Shell::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn loaded_shell() -> Shell {
        let mut sh = Shell::new();
        // build the graph database inline rather than from a file
        let (schema, instance) = parse_database(
            "schema G(U, U).\nG('a','b').\nG('b','c').\nG('c','a').",
            &mut sh.universe,
        )
        .unwrap();
        let _ = schema;
        sh.instance = instance;
        sh
    }

    #[test]
    fn queries_and_commands_flow() {
        let mut sh = loaded_shell();
        let out = sh.command("{[x:U, y:U] | G(x, y)}").unwrap().unwrap();
        assert!(out.contains("3 rows"), "{out}");
        let schema = sh.command(":schema").unwrap().unwrap();
        assert!(schema.contains("G(U, U)"), "{schema}");
        assert!(schema.contains("<0,0>-database schema"), "{schema}");
        let dump = sh.command(":db").unwrap().unwrap();
        assert!(dump.contains("G('a', 'b')."), "{dump}");
    }

    #[test]
    fn classify_and_explain() {
        let mut sh = loaded_shell();
        let c = sh
            .command(":classify {[x:U, y:U] | G(x, y)}")
            .unwrap()
            .unwrap();
        assert!(c.contains("RR-(CALC_0^0)"), "{c}");
        let e = sh
            .command(":explain {[x:U, y:U] | G(x, y)}")
            .unwrap()
            .unwrap();
        assert!(e.contains("r(x): 3 candidates"), "{e}");
        // the optimized plan follows the ranges section; the flat
        // conjunctive query takes the columnar kernel path
        assert!(e.contains("plan: calc (safe)"), "{e}");
        assert!(e.contains("join-algorithms"), "{e}");
        assert!(e.contains("columnar join kernels"), "{e}");
        assert!(e.contains("scan G"), "{e}");
    }

    #[test]
    fn budget_and_mode_toggles() {
        let mut sh = loaded_shell();
        assert!(sh.command(":budget 4").unwrap().unwrap().contains('4'));
        // a set-typed head now exceeds the budget under active domains
        sh.command(":active").unwrap();
        let err = sh.command("{[X:{U}] | X = X}").unwrap_err();
        assert!(err.contains("cardinality"), "{err}");
        sh.command(":active").unwrap(); // back to safe
        assert!(sh.command(":budget notanumber").is_err());
    }

    #[test]
    fn tripped_budgets_report_diagnostics_and_shell_survives() {
        let mut sh = loaded_shell();
        // Memory budget: a handful of bytes cannot hold even one answer row.
        sh.command(":mem 8").unwrap();
        let err = sh.command("{[x:U, y:U] | G(x, y)}").unwrap_err();
        assert!(err.contains("memory"), "{err}");
        assert!(err.contains("budgets:"), "{err}");
        assert!(err.contains("8 bytes"), "{err}");
        sh.command(":mem 0").unwrap();

        // Zero step fuel trips immediately, in both evaluation modes.
        sh.config.max_steps = 0;
        let err = sh.command("{[x:U, y:U] | G(x, y)}").unwrap_err();
        assert!(err.contains("step"), "{err}");
        assert!(err.contains("budgets:"), "{err}");
        sh.command(":active").unwrap();
        let err = sh.command("{[x:U, y:U] | G(x, y)}").unwrap_err();
        assert!(err.contains("step"), "{err}");
        sh.command(":active").unwrap();
        sh.config.max_steps = u64::MAX;

        // The shell is still fully usable after every trip.
        let out = sh.command("{[x:U, y:U] | G(x, y)}").unwrap().unwrap();
        assert!(out.contains("3 rows"), "{out}");
    }

    #[test]
    fn deadline_and_mem_commands() {
        let mut sh = loaded_shell();
        let out = sh.command(":deadline 250").unwrap().unwrap();
        assert!(out.contains("250 ms"), "{out}");
        assert_eq!(sh.config.deadline, Some(Duration::from_millis(250)));
        let out = sh.command(":deadline 0").unwrap().unwrap();
        assert!(out.contains("unlimited"), "{out}");
        assert_eq!(sh.config.deadline, None);

        let out = sh.command(":mem 4096").unwrap().unwrap();
        assert!(out.contains("4096 bytes"), "{out}");
        assert_eq!(sh.config.max_memory_bytes, 4096);
        let out = sh.command(":mem 0").unwrap().unwrap();
        assert!(out.contains("unlimited"), "{out}");
        assert_eq!(sh.config.max_memory_bytes, u64::MAX);

        assert!(sh.command(":deadline soon").is_err());
        assert!(sh.command(":mem lots").is_err());
    }

    #[test]
    fn datalog_resource_errors_survive() {
        let mut sh = loaded_shell();
        sh.config.max_steps = 1;
        let dir = std::env::temp_dir().join("nestdb_shell_dl_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("tc.dl");
        std::fs::write(
            &path,
            "rel tc(U, U).\ntc(x, y) :- G(x, y).\ntc(x, y) :- tc(x, z), G(z, y).",
        )
        .unwrap();
        let err = sh
            .command(&format!(":datalog {}", path.display()))
            .unwrap_err();
        assert!(err.contains("step"), "{err}");
        assert!(err.contains("budgets:"), "{err}");
        sh.config.max_steps = u64::MAX;
        let out = sh
            .command(&format!(":datalog {}", path.display()))
            .unwrap()
            .unwrap();
        assert!(out.contains("tc: 9 facts"), "{out}");
    }

    #[test]
    fn errors_and_noise_lines() {
        let mut sh = loaded_shell();
        assert_eq!(sh.command("").unwrap(), None);
        assert_eq!(sh.command("% comment").unwrap(), None);
        assert!(sh.command(":nope").is_err());
        assert!(sh.command("{[x:U] | Missing(x)}").is_err());
        assert_eq!(sh.command(":quit").unwrap_err(), "quit");
        assert!(sh.command(":load /no/such/file.no").is_err());
    }

    #[test]
    fn help_lists_commands() {
        let mut sh = Shell::new();
        let h = sh.command(":help").unwrap().unwrap();
        for cmd in [
            ":load",
            ":open",
            ":insert",
            ":sync",
            ":close",
            ":classify",
            ":explain",
            ":check",
            ":datalog",
            ":budget",
            ":deadline",
            ":mem",
            ":threads",
        ] {
            assert!(h.contains(cmd), "{h}");
        }
    }

    #[test]
    fn check_renders_certificate_for_clean_query() {
        let mut sh = loaded_shell();
        let out = sh
            .command(":check {[x:U, y:U] | G(x, y)}")
            .unwrap()
            .unwrap();
        assert!(out.contains("certificate:"), "{out}");
        assert!(out.contains("RR-(CALC_0^0)"), "{out}");
        assert!(out.contains("LOGSPACE"), "{out}");
        assert!(
            out.contains("restricted by rule 1 (Definition 5.2)"),
            "{out}"
        );
    }

    #[test]
    fn check_renders_spanned_diagnostics_with_carets() {
        let mut sh = loaded_shell();
        let out = sh.command(":check {[x:U] | H(x)}").unwrap().unwrap();
        assert!(out.contains("error[TY001]"), "{out}");
        assert!(out.contains('^'), "{out}");
        assert!(out.contains("no certificate"), "{out}");
    }

    #[test]
    fn check_analyzes_datalog_files() {
        let mut sh = loaded_shell();
        let dir = std::env::temp_dir().join("nestdb_shell_check_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("tc.dl");
        std::fs::write(
            &path,
            "rel tc(U, U).\ntc(x, y) :- G(x, y).\ntc(x, y) :- tc(x, z), G(z, y).",
        )
        .unwrap();
        let out = sh
            .command(&format!(":check {}", path.display()))
            .unwrap()
            .unwrap();
        assert!(out.contains("inf-Datalog¬_0^0"), "{out}");
        assert!(out.contains("PTIME"), "{out}");
        assert!(sh.command(":check").is_err());
    }

    #[test]
    fn check_is_pure_under_any_budget_and_thread_count() {
        let mut sh = loaded_shell();
        // zero fuel: evaluation would trip instantly, analysis must not
        sh.config.max_steps = 0;
        sh.command(":threads 4").unwrap();
        let out = sh
            .command(":check {[x:U, y:U] | G(x, y)}")
            .unwrap()
            .unwrap();
        assert!(out.contains("certificate:"), "{out}");
        // …while evaluation of the same query does trip
        assert!(sh.command("{[x:U, y:U] | G(x, y)}").is_err());
    }

    #[test]
    fn parse_errors_show_caret_excerpts() {
        let mut sh = loaded_shell();
        let err = sh.command("{[x:U] | G(x,, x)}").unwrap_err();
        assert!(err.contains("line 1"), "{err}");
        assert!(err.contains('^'), "{err}");
    }

    fn scratch(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("nestdb_shell_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn durable_open_insert_query_reopen() {
        let dir = scratch("durable");
        let d = dir.display().to_string();
        let mut sh = Shell::new();
        let out = sh.command(&format!(":open {d}")).unwrap().unwrap();
        assert!(out.contains("created"), "{out}");
        sh.command(":insert schema G(U, U).").unwrap();
        sh.command(":insert G('a', 'b').").unwrap();
        sh.command(":insert G('b', 'c').").unwrap();
        let out = sh.command("{[x:U, y:U] | G(x, y)}").unwrap().unwrap();
        assert!(out.contains("2 rows"), "{out}");
        let out = sh.command(":save").unwrap().unwrap();
        assert!(out.contains("epoch 1"), "{out}");
        sh.command(":insert G('c', 'd').").unwrap();
        // Duplicate inserts are reported and not logged.
        let out = sh.command(":insert G('c', 'd').").unwrap().unwrap();
        assert!(out.contains("already"), "{out}");
        // Invalid mutations surface as messages, never a panic.
        assert!(sh.command(":insert H('a').").is_err());
        assert!(sh.command(":insert G('a').").is_err());
        drop(sh);

        // A fresh shell recovers: 2 checkpointed tuples + 1 replayed frame.
        let mut sh = Shell::new();
        let out = sh.command(&format!(":open {d}")).unwrap().unwrap();
        assert!(out.contains("1 relations, 3 tuples"), "{out}");
        assert!(out.contains("1 frames replayed"), "{out}");
        let out = sh.command("{[x:U, y:U] | G(x, y)}").unwrap().unwrap();
        assert!(out.contains("3 rows"), "{out}");
        let out = sh.command(":sync").unwrap().unwrap();
        assert!(out.contains("fsynced"), "{out}");
        let out = sh.command(":close").unwrap().unwrap();
        assert!(out.contains("detached"), "{out}");
        assert!(sh.command(":sync").is_err(), "no store attached any more");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn durable_load_imports_into_the_store() {
        let dir = scratch("import");
        std::fs::create_dir_all(&dir).unwrap();
        let file = dir.join("graph.no");
        std::fs::write(&file, "schema G(U, U).\nG('a','b').\nG('b','c').\n").unwrap();
        let store = dir.join("store");
        let mut sh = Shell::new();
        sh.command(&format!(":open {}", store.display())).unwrap();
        let out = sh
            .command(&format!(":load {}", file.display()))
            .unwrap()
            .unwrap();
        assert!(out.contains("+1 relations, +2 tuples"), "{out}");
        drop(sh);
        let mut sh = Shell::new();
        sh.command(&format!(":open {}", store.display())).unwrap();
        let out = sh.command("{[x:U, y:U] | G(x, y)}").unwrap().unwrap();
        assert!(out.contains("2 rows"), "{out}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn durable_open_reports_corruption_without_panic() {
        let dir = scratch("corrupt");
        let d = dir.display().to_string();
        let mut sh = Shell::new();
        sh.command(&format!(":open {d}")).unwrap();
        sh.command(":insert schema G(U, U).").unwrap();
        sh.command(":insert G('a', 'b').").unwrap();
        sh.command(":insert G('b', 'c').").unwrap();
        sh.command(":close").unwrap();
        // Flip a payload byte of the first frame — live frames follow, so
        // this is mid-log corruption and :open must refuse, structurally.
        let wal = dir.join(no_storage::WAL_FILE);
        let mut bytes = std::fs::read(&wal).unwrap();
        let at =
            no_storage::wal::WAL_HEADER_LEN as usize + no_storage::wal::FRAME_OVERHEAD as usize + 2;
        bytes[at] ^= 0x20;
        std::fs::write(&wal, &bytes).unwrap();
        let err = sh.command(&format!(":open {d}")).unwrap_err();
        assert!(err.contains("corrupt"), "{err}");
        assert!(err.contains("checksum"), "{err}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn threads_command_controls_parallelism() {
        let mut sh = loaded_shell();
        let out = sh.command(":threads 4").unwrap().unwrap();
        assert!(out.contains('4'), "{out}");
        assert_eq!(sh.threads, 4);
        // queries and datalog still give the same answers at 4 workers
        let out = sh.command("{[x:U, y:U] | G(x, y)}").unwrap().unwrap();
        assert!(out.contains("3 rows"), "{out}");
        sh.command(":active").unwrap();
        let out = sh.command("{[x:U, y:U] | G(x, y)}").unwrap().unwrap();
        assert!(out.contains("3 rows"), "{out}");
        sh.command(":active").unwrap();
        let out = sh.command(":threads 1").unwrap().unwrap();
        assert!(out.contains("sequential"), "{out}");
        assert!(sh.command(":threads 0").is_err());
        assert!(sh.command(":threads many").is_err());
    }
}
