//! The interactive shell behind the `nestdb` binary — in the library so
//! its command loop is unit-testable.
//!
//! ```text
//! $ cargo run --bin nestdb -- mydb.no
//! nestdb> {[x:U, y:U] | G(x, y)}
//! nestdb> :classify {[u:U, v:U] | ifp(S; x:U, y:U | G(x,y) \/ exists z:U (S(x,z) /\ G(z,y)))(u, v)}
//! nestdb> :datalog rules.dl
//! nestdb> :help
//! ```
//!
//! Databases use the text format of `no_object::text` (`schema R(U, {U}).`
//! followed by facts); queries use the CALC concrete syntax; Datalog files
//! use the `no_datalog::parser` syntax. Queries are evaluated with safe
//! (range-restricted) evaluation by default, falling back to active
//! domains per variable, under configurable budgets.

use crate::session::Session;
use no_core::error::EvalConfig;
use no_core::parser::parse_query;
use no_core::print::Printer;
use no_core::report::{classify, InputAssumption};
use no_datalog as datalog;
use no_object::text::{parse_database, render_database};
use no_object::{Governor, Instance, Schema, Universe, Value};
use std::time::{Duration, Instant};

/// The shell: a universe, a database, budgets, and an evaluation mode.
pub struct Shell {
    universe: Universe,
    instance: Instance,
    config: EvalConfig,
    active_domain: bool,
    threads: usize,
}

impl Shell {
    /// A fresh shell with an empty database.
    pub fn new() -> Self {
        Shell {
            universe: Universe::new(),
            instance: Instance::empty(Schema::new()),
            config: EvalConfig::default(),
            active_domain: false,
            threads: 1,
        }
    }

    /// A fresh [`Session`] for one evaluation: current budgets as a fresh
    /// governor allowance, current worker count.
    fn session(&self) -> Session {
        Session::builder()
            .governor(self.config.governor())
            .parallelism(self.threads)
            .build()
    }

    /// Load a database file (text format), replacing the current one.
    pub fn load(&mut self, path: &str) -> Result<String, String> {
        let src = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
        let (schema, instance) =
            parse_database(&src, &mut self.universe).map_err(|e| e.to_string())?;
        let summary = format!(
            "loaded {}: {} relations, {} tuples, {} atoms",
            path,
            schema.len(),
            instance.cardinality(),
            instance.atoms().len()
        );
        self.instance = instance;
        Ok(summary)
    }

    fn render_row(&self, row: &[Value]) -> String {
        let printer = Printer::with_universe(&self.universe);
        let cells: Vec<String> = row.iter().map(|v| printer.value(v)).collect();
        format!("({})", cells.join(", "))
    }

    /// Render a tripped budget: which budget, where, and how much of each
    /// allowance was consumed. The shell stays alive after showing this.
    fn budget_diagnostic(&self, governor: &Governor, err: &dyn std::fmt::Display) -> String {
        let show = |v: u64| {
            if v == u64::MAX {
                "unlimited".to_string()
            } else {
                v.to_string()
            }
        };
        let limits = governor.limits();
        let deadline = match limits.deadline {
            Some(d) => format!("{} ms", d.as_millis()),
            None => "unlimited".to_string(),
        };
        format!(
            "{err}\nbudgets: steps {}/{}, memory {}/{} bytes, elapsed {:.1} ms (deadline {})\n\
             the database is unchanged; raise :budget, :mem or :deadline, or simplify the query",
            governor.steps_spent(),
            show(limits.max_steps),
            governor.mem_spent(),
            show(limits.max_memory_bytes),
            governor.elapsed().as_secs_f64() * 1e3,
            deadline,
        )
    }

    fn run_query(&mut self, src: &str) -> Result<String, String> {
        let query = parse_query(src, &mut self.universe).map_err(|e| e.render(src))?;
        let t = Instant::now();
        let session = self.session();
        let result = if self.active_domain {
            session.eval_calc(&self.instance, &query)
        } else {
            session.eval_calc_safe(&self.instance, &query)
        };
        let answer = result.map_err(|e| match e.resource() {
            Some(r) => self.budget_diagnostic(session.governor(), r),
            None => e.to_string(),
        })?;
        let mut out = String::new();
        for row in answer.sorted_rows() {
            out.push_str(&self.render_row(row));
            out.push('\n');
        }
        out.push_str(&format!(
            "{} rows in {:.1} ms ({})",
            answer.len(),
            t.elapsed().as_secs_f64() * 1e3,
            if self.active_domain {
                "active-domain"
            } else {
                "safe"
            },
        ));
        Ok(out)
    }

    fn classify_query(&mut self, src: &str) -> Result<String, String> {
        let query = parse_query(src, &mut self.universe).map_err(|e| e.render(src))?;
        let mut out = String::new();
        for (label, assumption) in [
            ("no assumption", InputAssumption::Unknown),
            ("dense inputs ", InputAssumption::Dense),
        ] {
            let report =
                classify(self.instance.schema(), &query, assumption).map_err(|e| e.to_string())?;
            out.push_str(&format!(
                "{label}: {} → {} (by {})\n",
                report.language, report.bound.bound, report.bound.by
            ));
            if !report.unrestricted_vars.is_empty() {
                out.push_str(&format!(
                    "  unrestricted variables: {}\n",
                    report.unrestricted_vars.join(", ")
                ));
            }
        }
        Ok(out.trim_end().to_string())
    }

    fn explain_query(&mut self, src: &str) -> Result<String, String> {
        use no_core::nf;
        use no_core::ranges::compute_ranges;
        use no_core::typeck;
        let query = parse_query(src, &mut self.universe).map_err(|e| e.render(src))?;
        let checked = typeck::check(self.instance.schema(), &query.head, &query.body)
            .map_err(|e| e.to_string())?;
        let m = nf::metrics(&query.body);
        let mut out = format!(
            "CALC_{}^{} formula: {} nodes, quantifier rank {}, fixpoint depth {}
",
            checked.set_height, checked.tuple_width, m.size, m.quantifier_rank, m.fixpoint_depth
        );
        match compute_ranges(
            &self.instance,
            &checked.var_types,
            &query.body,
            &self.config,
        ) {
            Ok(ranges) => {
                out.push_str(
                    "computed ranges (Theorem 5.1):
",
                );
                let mut any = false;
                for (path, vals) in ranges.iter() {
                    any = true;
                    out.push_str(&format!(
                        "  r({path}): {} candidates
",
                        vals.len()
                    ));
                }
                if !any {
                    out.push_str(
                        "  (none — evaluation falls back to active domains)
",
                    );
                }
                for (v, ty) in checked.var_types.iter() {
                    if ranges.of_var(v).is_none() {
                        out.push_str(&format!(
                            "  {v}:{ty} unrestricted → active domain
"
                        ));
                    }
                }
            }
            Err(e) => out.push_str(&format!(
                "range computation refused: {e}
"
            )),
        }
        // The compiled, optimized plan (cache-backed in long-lived
        // sessions; the shell builds a session per evaluation, so this
        // always shows a cold compile).
        let session = self.session();
        let mode = if self.active_domain {
            no_plan::CalcMode::ActiveDomain
        } else {
            no_plan::CalcMode::Safe
        };
        match session.explain(
            &self.instance,
            crate::session::ExplainTarget::Calc {
                query: &query,
                mode,
            },
        ) {
            Ok(planned) => {
                out.push('\n');
                out.push_str(&planned.render_text());
            }
            Err(e) => out.push_str(&format!("planning refused: {e}\n")),
        }
        Ok(out.trim_end().to_string())
    }

    /// `:check` — static analysis only. The argument is a `.dl` file path
    /// (Datalog¬) or inline CALC query text. Never evaluates, so it works
    /// under any budget and any `:threads` setting.
    fn check_input(&mut self, arg: &str) -> Result<String, String> {
        if arg.is_empty() {
            return Err(":check needs a query or a .dl file (try :help)".to_string());
        }
        let session = self.session();
        let (src, analysis) = if arg.ends_with(".dl") {
            let src =
                std::fs::read_to_string(arg).map_err(|e| format!("cannot read {arg}: {e}"))?;
            let a = session.analyze_datalog(self.instance.schema(), &src, &mut self.universe);
            (src, a)
        } else {
            let a = session.analyze(self.instance.schema(), arg, &mut self.universe);
            (arg.to_string(), a)
        };
        debug_assert_eq!(
            session.governor().steps_spent(),
            0,
            "analysis must not spend evaluation fuel"
        );
        Ok(analysis.render(&src))
    }

    fn run_datalog(&mut self, path: &str) -> Result<String, String> {
        let (path, stratified) = match path.strip_suffix(" stratified") {
            Some(p) => (p.trim(), true),
            None => (path, false),
        };
        let src = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
        let program =
            datalog::parse_program(&src, &mut self.universe).map_err(|e| e.render(&src))?;
        let t = Instant::now();
        let session = self.session();
        let trip = |e: crate::error::Error| match e.resource() {
            Some(r) => self.budget_diagnostic(session.governor(), r),
            None => e.to_string(),
        };
        let (idb, stats) = if stratified {
            let idb = session
                .eval_datalog_stratified(&program, &self.instance)
                .map_err(trip)?;
            let facts = idb.values().map(|r| r.len()).sum();
            (
                idb,
                datalog::EvalStats {
                    rounds: 0,
                    facts,
                    joins: 0,
                },
            )
        } else {
            session
                .eval_datalog(&program, &self.instance, datalog::Strategy::SemiNaive)
                .map_err(trip)?
        };
        let mut out = String::new();
        for (name, rel) in &idb {
            out.push_str(&format!("{name}: {} facts\n", rel.len()));
            for row in rel.sorted_rows().into_iter().take(20) {
                out.push_str(&format!("  {}\n", self.render_row(row)));
            }
            if rel.len() > 20 {
                out.push_str("  …\n");
            }
        }
        out.push_str(&format!(
            "{} rounds, {} facts, {:.1} ms",
            stats.rounds,
            stats.facts,
            t.elapsed().as_secs_f64() * 1e3
        ));
        Ok(out)
    }

    /// Execute one input line: a `:command` or a CALC query.
    ///
    /// `Ok(Some(text))` is output to show, `Ok(None)` a no-op (blank or
    /// comment), `Err("quit")` the quit signal, any other `Err` an error
    /// message to display.
    pub fn command(&mut self, line: &str) -> Result<Option<String>, String> {
        let line = line.trim();
        if line.is_empty() || line.starts_with('%') {
            return Ok(None);
        }
        if let Some(rest) = line.strip_prefix(':') {
            let (cmd, arg) = rest.split_once(' ').unwrap_or((rest, ""));
            let arg = arg.trim();
            return match cmd {
                "help" | "h" => Ok(Some(HELP.to_string())),
                "quit" | "q" => Err("quit".to_string()),
                "load" => self.load(arg).map(Some),
                "save" => {
                    let text = render_database(&self.universe, &self.instance);
                    std::fs::write(arg, &text).map_err(|e| format!("cannot write {arg}: {e}"))?;
                    Ok(Some(format!(
                        "saved {} tuples to {arg}",
                        self.instance.cardinality()
                    )))
                }
                "db" => Ok(Some(render_database(&self.universe, &self.instance))),
                "schema" => {
                    let mut out = String::new();
                    for r in self.instance.schema().relations() {
                        let cols: Vec<String> =
                            r.column_types.iter().map(ToString::to_string).collect();
                        out.push_str(&format!("{}({})\n", r.name, cols.join(", ")));
                    }
                    let (i, k) = self.instance.schema().ik();
                    out.push_str(&format!("an <{i},{k}>-database schema"));
                    Ok(Some(out))
                }
                "classify" => self.classify_query(arg).map(Some),
                "explain" => self.explain_query(arg).map(Some),
                "check" => self.check_input(arg).map(Some),
                "datalog" => self.run_datalog(arg).map(Some),
                "budget" => match arg.parse::<u64>() {
                    Ok(n) => {
                        self.config.max_range = n;
                        Ok(Some(format!("max quantifier range set to {n}")))
                    }
                    Err(_) => Err(format!("not a number: {arg}")),
                },
                "deadline" => match arg.parse::<u64>() {
                    Ok(0) => {
                        self.config.deadline = None;
                        Ok(Some("deadline cleared (unlimited wall clock)".to_string()))
                    }
                    Ok(ms) => {
                        self.config.deadline = Some(Duration::from_millis(ms));
                        Ok(Some(format!("deadline set to {ms} ms per evaluation")))
                    }
                    Err(_) => Err(format!("not a number of milliseconds: {arg}")),
                },
                "threads" => match arg.parse::<usize>() {
                    Ok(n) if n >= 1 => {
                        self.threads = n;
                        Ok(Some(format!(
                            "worker threads set to {n}{}",
                            if n == 1 { " (sequential)" } else { "" }
                        )))
                    }
                    Ok(_) => Err("need at least 1 thread".to_string()),
                    Err(_) => Err(format!("not a thread count: {arg}")),
                },
                "mem" => match arg.parse::<u64>() {
                    Ok(0) => {
                        self.config.max_memory_bytes = u64::MAX;
                        Ok(Some("memory budget cleared (unlimited)".to_string()))
                    }
                    Ok(bytes) => {
                        self.config.max_memory_bytes = bytes;
                        Ok(Some(format!(
                            "memory budget set to {bytes} bytes of materialised values"
                        )))
                    }
                    Err(_) => Err(format!("not a number of bytes: {arg}")),
                },
                "active" => {
                    self.active_domain = !self.active_domain;
                    Ok(Some(format!(
                        "evaluation mode: {}",
                        if self.active_domain {
                            "active-domain"
                        } else {
                            "safe (range-restricted)"
                        }
                    )))
                }
                other => Err(format!("unknown command :{other} (try :help)")),
            };
        }
        self.run_query(line).map(Some)
    }
}

const HELP: &str = "\
queries:   {[x:U, y:{U}] | Friends(x, y) /\\ ...}   evaluate a CALC query
commands:
  :load <file>       load a database (text format: schema R(U). R('a').)
  :save <file>       write the database back out in the text format
  :schema            show the schema and its <i,k> classification
  :db                dump the database
  :classify <query>  language fragment + complexity bound (paper theorems)
  :explain <query>   formula metrics, safe-evaluation ranges + the optimized
                     query plan (passes, estimates, early-trip warnings)
  :check <query|file.dl>   static analysis: spanned diagnostics with paper
                     citations + a <i,k> complexity certificate (no evaluation)
  :datalog <file> [stratified]   run a Datalog¬ program (default: inflationary)
  :active            toggle active-domain vs safe evaluation
  :budget <n>        set the quantifier-range budget
  :deadline <ms>     wall-clock limit per evaluation (0 = unlimited)
  :mem <bytes>       memory budget for materialised values (0 = unlimited)
  :threads <n>       worker threads for parallel evaluation (1 = sequential)
  :help  :quit";

impl Default for Shell {
    fn default() -> Self {
        Shell::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn loaded_shell() -> Shell {
        let mut sh = Shell::new();
        // build the graph database inline rather than from a file
        let (schema, instance) = parse_database(
            "schema G(U, U).\nG('a','b').\nG('b','c').\nG('c','a').",
            &mut sh.universe,
        )
        .unwrap();
        let _ = schema;
        sh.instance = instance;
        sh
    }

    #[test]
    fn queries_and_commands_flow() {
        let mut sh = loaded_shell();
        let out = sh.command("{[x:U, y:U] | G(x, y)}").unwrap().unwrap();
        assert!(out.contains("3 rows"), "{out}");
        let schema = sh.command(":schema").unwrap().unwrap();
        assert!(schema.contains("G(U, U)"), "{schema}");
        assert!(schema.contains("<0,0>-database schema"), "{schema}");
        let dump = sh.command(":db").unwrap().unwrap();
        assert!(dump.contains("G('a', 'b')."), "{dump}");
    }

    #[test]
    fn classify_and_explain() {
        let mut sh = loaded_shell();
        let c = sh
            .command(":classify {[x:U, y:U] | G(x, y)}")
            .unwrap()
            .unwrap();
        assert!(c.contains("RR-(CALC_0^0)"), "{c}");
        let e = sh
            .command(":explain {[x:U, y:U] | G(x, y)}")
            .unwrap()
            .unwrap();
        assert!(e.contains("r(x): 3 candidates"), "{e}");
        // the optimized plan follows the ranges section
        assert!(e.contains("plan: calc (safe)"), "{e}");
        assert!(e.contains("range x ← rule 1 (Definition 5.2)"), "{e}");
        assert!(e.contains("enumerate"), "{e}");
    }

    #[test]
    fn budget_and_mode_toggles() {
        let mut sh = loaded_shell();
        assert!(sh.command(":budget 4").unwrap().unwrap().contains('4'));
        // a set-typed head now exceeds the budget under active domains
        sh.command(":active").unwrap();
        let err = sh.command("{[X:{U}] | X = X}").unwrap_err();
        assert!(err.contains("cardinality"), "{err}");
        sh.command(":active").unwrap(); // back to safe
        assert!(sh.command(":budget notanumber").is_err());
    }

    #[test]
    fn tripped_budgets_report_diagnostics_and_shell_survives() {
        let mut sh = loaded_shell();
        // Memory budget: a handful of bytes cannot hold even one answer row.
        sh.command(":mem 8").unwrap();
        let err = sh.command("{[x:U, y:U] | G(x, y)}").unwrap_err();
        assert!(err.contains("memory"), "{err}");
        assert!(err.contains("budgets:"), "{err}");
        assert!(err.contains("8 bytes"), "{err}");
        sh.command(":mem 0").unwrap();

        // Zero step fuel trips immediately, in both evaluation modes.
        sh.config.max_steps = 0;
        let err = sh.command("{[x:U, y:U] | G(x, y)}").unwrap_err();
        assert!(err.contains("step"), "{err}");
        assert!(err.contains("budgets:"), "{err}");
        sh.command(":active").unwrap();
        let err = sh.command("{[x:U, y:U] | G(x, y)}").unwrap_err();
        assert!(err.contains("step"), "{err}");
        sh.command(":active").unwrap();
        sh.config.max_steps = u64::MAX;

        // The shell is still fully usable after every trip.
        let out = sh.command("{[x:U, y:U] | G(x, y)}").unwrap().unwrap();
        assert!(out.contains("3 rows"), "{out}");
    }

    #[test]
    fn deadline_and_mem_commands() {
        let mut sh = loaded_shell();
        let out = sh.command(":deadline 250").unwrap().unwrap();
        assert!(out.contains("250 ms"), "{out}");
        assert_eq!(sh.config.deadline, Some(Duration::from_millis(250)));
        let out = sh.command(":deadline 0").unwrap().unwrap();
        assert!(out.contains("unlimited"), "{out}");
        assert_eq!(sh.config.deadline, None);

        let out = sh.command(":mem 4096").unwrap().unwrap();
        assert!(out.contains("4096 bytes"), "{out}");
        assert_eq!(sh.config.max_memory_bytes, 4096);
        let out = sh.command(":mem 0").unwrap().unwrap();
        assert!(out.contains("unlimited"), "{out}");
        assert_eq!(sh.config.max_memory_bytes, u64::MAX);

        assert!(sh.command(":deadline soon").is_err());
        assert!(sh.command(":mem lots").is_err());
    }

    #[test]
    fn datalog_resource_errors_survive() {
        let mut sh = loaded_shell();
        sh.config.max_steps = 1;
        let dir = std::env::temp_dir().join("nestdb_shell_dl_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("tc.dl");
        std::fs::write(
            &path,
            "rel tc(U, U).\ntc(x, y) :- G(x, y).\ntc(x, y) :- tc(x, z), G(z, y).",
        )
        .unwrap();
        let err = sh
            .command(&format!(":datalog {}", path.display()))
            .unwrap_err();
        assert!(err.contains("step"), "{err}");
        assert!(err.contains("budgets:"), "{err}");
        sh.config.max_steps = u64::MAX;
        let out = sh
            .command(&format!(":datalog {}", path.display()))
            .unwrap()
            .unwrap();
        assert!(out.contains("tc: 9 facts"), "{out}");
    }

    #[test]
    fn errors_and_noise_lines() {
        let mut sh = loaded_shell();
        assert_eq!(sh.command("").unwrap(), None);
        assert_eq!(sh.command("% comment").unwrap(), None);
        assert!(sh.command(":nope").is_err());
        assert!(sh.command("{[x:U] | Missing(x)}").is_err());
        assert_eq!(sh.command(":quit").unwrap_err(), "quit");
        assert!(sh.command(":load /no/such/file.no").is_err());
    }

    #[test]
    fn help_lists_commands() {
        let mut sh = Shell::new();
        let h = sh.command(":help").unwrap().unwrap();
        for cmd in [
            ":load",
            ":classify",
            ":explain",
            ":check",
            ":datalog",
            ":budget",
            ":deadline",
            ":mem",
            ":threads",
        ] {
            assert!(h.contains(cmd), "{h}");
        }
    }

    #[test]
    fn check_renders_certificate_for_clean_query() {
        let mut sh = loaded_shell();
        let out = sh
            .command(":check {[x:U, y:U] | G(x, y)}")
            .unwrap()
            .unwrap();
        assert!(out.contains("certificate:"), "{out}");
        assert!(out.contains("RR-(CALC_0^0)"), "{out}");
        assert!(out.contains("LOGSPACE"), "{out}");
        assert!(
            out.contains("restricted by rule 1 (Definition 5.2)"),
            "{out}"
        );
    }

    #[test]
    fn check_renders_spanned_diagnostics_with_carets() {
        let mut sh = loaded_shell();
        let out = sh.command(":check {[x:U] | H(x)}").unwrap().unwrap();
        assert!(out.contains("error[TY001]"), "{out}");
        assert!(out.contains('^'), "{out}");
        assert!(out.contains("no certificate"), "{out}");
    }

    #[test]
    fn check_analyzes_datalog_files() {
        let mut sh = loaded_shell();
        let dir = std::env::temp_dir().join("nestdb_shell_check_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("tc.dl");
        std::fs::write(
            &path,
            "rel tc(U, U).\ntc(x, y) :- G(x, y).\ntc(x, y) :- tc(x, z), G(z, y).",
        )
        .unwrap();
        let out = sh
            .command(&format!(":check {}", path.display()))
            .unwrap()
            .unwrap();
        assert!(out.contains("inf-Datalog¬_0^0"), "{out}");
        assert!(out.contains("PTIME"), "{out}");
        assert!(sh.command(":check").is_err());
    }

    #[test]
    fn check_is_pure_under_any_budget_and_thread_count() {
        let mut sh = loaded_shell();
        // zero fuel: evaluation would trip instantly, analysis must not
        sh.config.max_steps = 0;
        sh.command(":threads 4").unwrap();
        let out = sh
            .command(":check {[x:U, y:U] | G(x, y)}")
            .unwrap()
            .unwrap();
        assert!(out.contains("certificate:"), "{out}");
        // …while evaluation of the same query does trip
        assert!(sh.command("{[x:U, y:U] | G(x, y)}").is_err());
    }

    #[test]
    fn parse_errors_show_caret_excerpts() {
        let mut sh = loaded_shell();
        let err = sh.command("{[x:U] | G(x,, x)}").unwrap_err();
        assert!(err.contains("line 1"), "{err}");
        assert!(err.contains('^'), "{err}");
    }

    #[test]
    fn threads_command_controls_parallelism() {
        let mut sh = loaded_shell();
        let out = sh.command(":threads 4").unwrap().unwrap();
        assert!(out.contains('4'), "{out}");
        assert_eq!(sh.threads, 4);
        // queries and datalog still give the same answers at 4 workers
        let out = sh.command("{[x:U, y:U] | G(x, y)}").unwrap().unwrap();
        assert!(out.contains("3 rows"), "{out}");
        sh.command(":active").unwrap();
        let out = sh.command("{[x:U, y:U] | G(x, y)}").unwrap().unwrap();
        assert!(out.contains("3 rows"), "{out}");
        sh.command(":active").unwrap();
        let out = sh.command(":threads 1").unwrap().unwrap();
        assert!(out.contains("sequential"), "{out}");
        assert!(sh.command(":threads 0").is_err());
        assert!(sh.command(":threads many").is_err());
    }
}
