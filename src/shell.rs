//! The interactive shell behind the `nestdb` binary — in the library so
//! its command loop is unit-testable.
//!
//! ```text
//! $ cargo run --bin nestdb -- mydb.no
//! nestdb> {[x:U, y:U] | G(x, y)}
//! nestdb> :classify {[u:U, v:U] | ifp(S; x:U, y:U | G(x,y) \/ exists z:U (S(x,z) /\ G(z,y)))(u, v)}
//! nestdb> :datalog rules.dl
//! nestdb> :help
//! ```
//!
//! Databases use the text format of `no_object::text` (`schema R(U, {U}).`
//! followed by facts); queries use the CALC concrete syntax; Datalog files
//! use the `no_datalog::parser` syntax. Queries are evaluated with safe
//! (range-restricted) evaluation by default, falling back to active
//! domains per variable, under configurable budgets.
//!
//! Every evaluating command builds one [`Request`] and goes through
//! [`Session::run`] — the same dispatch point the TCP server and the CLI
//! subcommands use. The shell keeps only presentation (prompt text,
//! budget diagnostics, row truncation) on its side of that line.

use crate::session::{Session, Store};
use no_core::error::EvalConfig;
use no_core::parser::parse_query;
use no_core::report::{classify, InputAssumption};
use no_object::text::{parse_database, render_database};
use no_proto::{Lang, LimitsSpec, Mode, Op, Request, Response, Spend};
use std::sync::{Arc, RwLock};
use std::time::{Duration, Instant};

/// The shell: a shared [`Store`] (universe + database + optional durable
/// store), a persistent [`Session`], budgets, and an evaluation mode.
/// With `:open` the database becomes durable — a `no_storage::Db` backed
/// by a snapshot + write-ahead log directory owns the state, and
/// mutations are logged before they apply.
pub struct Shell {
    store: Arc<RwLock<Store>>,
    session: Session,
    config: EvalConfig,
    active_domain: bool,
    threads: usize,
}

impl Shell {
    /// A fresh shell with an empty database.
    pub fn new() -> Self {
        let store = Arc::new(RwLock::new(Store::new()));
        let session = Session::builder()
            .store(Arc::clone(&store))
            .parallelism(1)
            .build();
        Shell {
            store,
            session,
            config: EvalConfig::default(),
            active_domain: false,
            threads: 1,
        }
    }

    /// The store this shell reads and mutates (shared with its session,
    /// and shareable with further sessions — e.g. a server on the same
    /// database).
    pub fn store(&self) -> Arc<RwLock<Store>> {
        Arc::clone(&self.store)
    }

    /// The shell's budgets as a per-request limits override: every
    /// evaluating [`Request`] carries these, so each evaluation gets a
    /// fresh allowance (a tripped query never eats the next one's fuel).
    fn limits_spec(&self) -> LimitsSpec {
        LimitsSpec {
            max_steps: Some(self.config.max_steps),
            max_range: Some(self.config.max_range),
            max_fixpoint_iters: Some(self.config.max_fixpoint_iters),
            max_memory_bytes: Some(self.config.max_memory_bytes),
            // 0 is the wire encoding for "no deadline".
            deadline_ms: Some(match self.config.deadline {
                Some(d) => (d.as_millis() as u64).max(1),
                None => 0,
            }),
        }
    }

    /// Run one request and map failures to shell error strings: resource
    /// trips get the budget diagnostic, everything else shows its message.
    fn respond(&self, req: Request) -> Result<Response, String> {
        let resp = self.session.run(&req);
        if resp.ok {
            return Ok(resp);
        }
        let err = resp.error.as_ref().expect("failed responses carry errors");
        if err.resource_trip {
            Err(self.budget_diagnostic(resp.spend.as_ref(), &err.message))
        } else {
            Err(err.message.clone())
        }
    }

    fn eval_request(&self, op: Op, lang: Lang, text: &str) -> Request {
        Request {
            op,
            lang,
            mode: if self.active_domain {
                Mode::Fast
            } else {
                Mode::Safe
            },
            text: text.to_string(),
            limits: Some(self.limits_spec()),
            ..Request::default()
        }
    }

    /// Load a database file (text format). Without a durable store this
    /// replaces the in-memory database; with one attached it imports the
    /// file's declarations and facts into the store (logged, durable).
    pub fn load(&mut self, path: &str) -> Result<String, String> {
        let src = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
        let mut store = self
            .store
            .write()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        if let Some(db) = store.db_mut() {
            let stats = db.import_text(&src).map_err(|e| e.to_string())?;
            return Ok(format!(
                "imported {path} into {}: +{} relations, +{} tuples",
                db.dir().display(),
                stats.relations_added,
                stats.tuples_added
            ));
        }
        let (schema, instance) =
            parse_database(&src, store.universe_mut()).map_err(|e| e.to_string())?;
        let summary = format!(
            "loaded {}: {} relations, {} tuples, {} atoms",
            path,
            schema.len(),
            instance.cardinality(),
            instance.atoms().len()
        );
        store.set_instance(instance);
        Ok(summary)
    }

    /// Render a tripped budget: which budget, where, and how much of each
    /// allowance was consumed. The shell stays alive after showing this.
    fn budget_diagnostic(&self, spend: Option<&Spend>, err: &str) -> String {
        let show = |v: u64| {
            if v == u64::MAX {
                "unlimited".to_string()
            } else {
                v.to_string()
            }
        };
        let deadline = match self.config.deadline {
            Some(d) => format!("{} ms", d.as_millis()),
            None => "unlimited".to_string(),
        };
        let (steps, mem, elapsed_ms) = match spend {
            Some(s) => (s.steps, s.mem_bytes, s.elapsed_us as f64 / 1e3),
            None => (0, 0, 0.0),
        };
        format!(
            "{err}\nbudgets: steps {}/{}, memory {}/{} bytes, elapsed {:.1} ms (deadline {})\n\
             the database is unchanged; raise :budget, :mem or :deadline, or simplify the query",
            steps,
            show(self.config.max_steps),
            mem,
            show(self.config.max_memory_bytes),
            elapsed_ms,
            deadline,
        )
    }

    fn run_query(&mut self, src: &str) -> Result<String, String> {
        let t = Instant::now();
        let resp = self.respond(self.eval_request(Op::Eval, Lang::Calc, src))?;
        let rel = &resp.relations[0];
        let mut out = String::new();
        for row in &rel.rows {
            out.push_str(row);
            out.push('\n');
        }
        out.push_str(&format!(
            "{} rows in {:.1} ms ({})",
            rel.rows.len(),
            t.elapsed().as_secs_f64() * 1e3,
            if self.active_domain {
                "active-domain"
            } else {
                "safe"
            },
        ));
        Ok(out)
    }

    fn classify_query(&mut self, src: &str) -> Result<String, String> {
        let query = {
            let mut store = self
                .store
                .write()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            parse_query(src, store.universe_mut()).map_err(|e| e.render(src))?
        };
        let store = self
            .store
            .read()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let mut out = String::new();
        for (label, assumption) in [
            ("no assumption", InputAssumption::Unknown),
            ("dense inputs ", InputAssumption::Dense),
        ] {
            let report = classify(store.instance().schema(), &query, assumption)
                .map_err(|e| e.to_string())?;
            out.push_str(&format!(
                "{label}: {} → {} (by {})\n",
                report.language, report.bound.bound, report.bound.by
            ));
            if !report.unrestricted_vars.is_empty() {
                out.push_str(&format!(
                    "  unrestricted variables: {}\n",
                    report.unrestricted_vars.join(", ")
                ));
            }
        }
        Ok(out.trim_end().to_string())
    }

    fn explain_query(&mut self, src: &str) -> Result<String, String> {
        use no_core::nf;
        use no_core::ranges::compute_ranges;
        use no_core::typeck;
        let query = {
            let mut store = self
                .store
                .write()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            parse_query(src, store.universe_mut()).map_err(|e| e.render(src))?
        };
        let mut out = {
            let store = self
                .store
                .read()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            let instance = store.instance();
            let checked = typeck::check(instance.schema(), &query.head, &query.body)
                .map_err(|e| e.to_string())?;
            let m = nf::metrics(&query.body);
            let mut out = format!(
                "CALC_{}^{} formula: {} nodes, quantifier rank {}, fixpoint depth {}\n",
                checked.set_height,
                checked.tuple_width,
                m.size,
                m.quantifier_rank,
                m.fixpoint_depth
            );
            match compute_ranges(instance, &checked.var_types, &query.body, &self.config) {
                Ok(ranges) => {
                    out.push_str("computed ranges (Theorem 5.1):\n");
                    let mut any = false;
                    for (path, vals) in ranges.iter() {
                        any = true;
                        out.push_str(&format!("  r({path}): {} candidates\n", vals.len()));
                    }
                    if !any {
                        out.push_str("  (none — evaluation falls back to active domains)\n");
                    }
                    for (v, ty) in checked.var_types.iter() {
                        if ranges.of_var(v).is_none() {
                            out.push_str(&format!("  {v}:{ty} unrestricted → active domain\n"));
                        }
                    }
                }
                Err(e) => out.push_str(&format!("range computation refused: {e}\n")),
            }
            out
        };
        // The compiled, optimized plan — through the same Request path the
        // server uses, so repeated :explain hits the session's plan cache.
        match self.respond(self.eval_request(Op::Explain, Lang::Calc, src)) {
            Ok(resp) => {
                out.push('\n');
                out.push_str(&resp.explain.expect("explain responses carry a plan").text);
            }
            Err(e) => out.push_str(&format!("planning refused: {e}\n")),
        }
        Ok(out.trim_end().to_string())
    }

    /// `:check` — static analysis only. The argument is a `.dl` file path
    /// (Datalog¬) or inline CALC query text. Never evaluates, so it works
    /// under any budget and any `:threads` setting.
    fn check_input(&mut self, arg: &str) -> Result<String, String> {
        if arg.is_empty() {
            return Err(":check needs a query or a .dl file (try :help)".to_string());
        }
        let (lang, src) = if arg.ends_with(".dl") {
            let src =
                std::fs::read_to_string(arg).map_err(|e| format!("cannot read {arg}: {e}"))?;
            (Lang::Datalog, src)
        } else {
            (Lang::Calc, arg.to_string())
        };
        let resp = self.respond(Request {
            op: Op::Analyze,
            lang,
            text: src,
            ..Request::default()
        })?;
        Ok(resp
            .analysis
            .expect("analyze responses carry findings")
            .text)
    }

    fn run_datalog(&mut self, path: &str) -> Result<String, String> {
        let (path, stratified) = match path.strip_suffix(" stratified") {
            Some(p) => (p.trim(), true),
            None => (path, false),
        };
        let src = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
        let t = Instant::now();
        let mut req = self.eval_request(Op::Eval, Lang::Datalog, &src);
        req.strategy = if stratified {
            no_proto::Strategy::Stratified
        } else {
            no_proto::Strategy::SemiNaive
        };
        let resp = self.respond(req)?;
        let mut out = String::new();
        let mut facts = 0usize;
        for rel in &resp.relations {
            facts += rel.rows.len();
            out.push_str(&format!("{}: {} facts\n", rel.name, rel.rows.len()));
            for row in rel.rows.iter().take(20) {
                out.push_str(&format!("  {row}\n"));
            }
            if rel.rows.len() > 20 {
                out.push_str("  …\n");
            }
        }
        out.push_str(&format!(
            "{} rounds, {} facts, {:.1} ms",
            resp.rounds.unwrap_or(0),
            facts,
            t.elapsed().as_secs_f64() * 1e3
        ));
        Ok(out)
    }

    /// Execute one input line: a `:command` or a CALC query.
    ///
    /// `Ok(Some(text))` is output to show, `Ok(None)` a no-op (blank or
    /// comment), `Err("quit")` the quit signal, any other `Err` an error
    /// message to display.
    pub fn command(&mut self, line: &str) -> Result<Option<String>, String> {
        let line = line.trim();
        if line.is_empty() || line.starts_with('%') {
            return Ok(None);
        }
        if let Some(rest) = line.strip_prefix(':') {
            let (cmd, arg) = rest.split_once(' ').unwrap_or((rest, ""));
            let arg = arg.trim();
            return match cmd {
                "help" | "h" => Ok(Some(HELP.to_string())),
                "quit" | "q" => Err("quit".to_string()),
                "load" => self.load(arg).map(Some),
                "open" => {
                    if arg.is_empty() {
                        return Err(":open needs a database directory (try :help)".to_string());
                    }
                    let resp = self.respond(Request {
                        op: Op::Open,
                        text: arg.to_string(),
                        limits: Some(self.limits_spec()),
                        ..Request::default()
                    })?;
                    Ok(resp.message)
                }
                "insert" => {
                    if arg.is_empty() {
                        return Err(
                            ":insert needs a clause like G('a', 'b'). (try :help)".to_string()
                        );
                    }
                    let resp = self.respond(Request {
                        op: Op::Insert,
                        text: arg.to_string(),
                        ..Request::default()
                    })?;
                    Ok(resp.message)
                }
                "sync" => {
                    let mut store = self
                        .store
                        .write()
                        .unwrap_or_else(std::sync::PoisonError::into_inner);
                    match store.db_mut() {
                        Some(db) => {
                            db.sync().map_err(|e| e.to_string())?;
                            Ok(Some(format!(
                                "write-ahead log fsynced ({} frames, epoch {})",
                                db.wal_frames(),
                                db.epoch()
                            )))
                        }
                        None => Err("no durable database attached (use :open <dir>)".to_string()),
                    }
                }
                "close" => {
                    let mut store = self
                        .store
                        .write()
                        .unwrap_or_else(std::sync::PoisonError::into_inner);
                    match store.detach() {
                        Some(db) => Ok(Some(format!("detached {}", db.dir().display()))),
                        None => Err("no durable database attached".to_string()),
                    }
                }
                "save" => {
                    let has_db = self
                        .store
                        .read()
                        .unwrap_or_else(std::sync::PoisonError::into_inner)
                        .db()
                        .is_some();
                    if arg.is_empty() && !has_db {
                        return Err(
                            ":save needs a file path (or :open a durable database)".to_string()
                        );
                    }
                    let resp = self.respond(Request {
                        op: Op::Save,
                        text: arg.to_string(),
                        ..Request::default()
                    })?;
                    Ok(resp.message)
                }
                "db" => {
                    let store = self
                        .store
                        .read()
                        .unwrap_or_else(std::sync::PoisonError::into_inner);
                    Ok(Some(render_database(store.universe(), store.instance())))
                }
                "schema" => {
                    let store = self
                        .store
                        .read()
                        .unwrap_or_else(std::sync::PoisonError::into_inner);
                    let mut out = String::new();
                    for r in store.instance().schema().relations() {
                        let cols: Vec<String> =
                            r.column_types.iter().map(ToString::to_string).collect();
                        out.push_str(&format!("{}({})\n", r.name, cols.join(", ")));
                    }
                    let (i, k) = store.instance().schema().ik();
                    out.push_str(&format!("an <{i},{k}>-database schema"));
                    Ok(Some(out))
                }
                "classify" => self.classify_query(arg).map(Some),
                "explain" => self.explain_query(arg).map(Some),
                "check" => self.check_input(arg).map(Some),
                "datalog" => self.run_datalog(arg).map(Some),
                "budget" => match arg.parse::<u64>() {
                    Ok(n) => {
                        self.config.max_range = n;
                        Ok(Some(format!("max quantifier range set to {n}")))
                    }
                    Err(_) => Err(format!("not a number: {arg}")),
                },
                "deadline" => match arg.parse::<u64>() {
                    Ok(0) => {
                        self.config.deadline = None;
                        Ok(Some("deadline cleared (unlimited wall clock)".to_string()))
                    }
                    Ok(ms) => {
                        self.config.deadline = Some(Duration::from_millis(ms));
                        Ok(Some(format!("deadline set to {ms} ms per evaluation")))
                    }
                    Err(_) => Err(format!("not a number of milliseconds: {arg}")),
                },
                "threads" => match arg.parse::<usize>() {
                    Ok(n) if n >= 1 => {
                        self.threads = n;
                        self.session = self.session.with_parallelism(n);
                        Ok(Some(format!(
                            "worker threads set to {n}{}",
                            if n == 1 { " (sequential)" } else { "" }
                        )))
                    }
                    Ok(_) => Err("need at least 1 thread".to_string()),
                    Err(_) => Err(format!("not a thread count: {arg}")),
                },
                "mem" => match arg.parse::<u64>() {
                    Ok(0) => {
                        self.config.max_memory_bytes = u64::MAX;
                        Ok(Some("memory budget cleared (unlimited)".to_string()))
                    }
                    Ok(bytes) => {
                        self.config.max_memory_bytes = bytes;
                        Ok(Some(format!(
                            "memory budget set to {bytes} bytes of materialised values"
                        )))
                    }
                    Err(_) => Err(format!("not a number of bytes: {arg}")),
                },
                "active" => {
                    self.active_domain = !self.active_domain;
                    Ok(Some(format!(
                        "evaluation mode: {}",
                        if self.active_domain {
                            "active-domain"
                        } else {
                            "safe (range-restricted)"
                        }
                    )))
                }
                other => Err(format!("unknown command :{other} (try :help)")),
            };
        }
        self.run_query(line).map(Some)
    }
}

const HELP: &str = "\
queries:   {[x:U, y:{U}] | Friends(x, y) /\\ ...}   evaluate a CALC query
commands:
  :load <file>       load a database (text format: schema R(U). R('a').)
                     (with a store attached: import into it, logged)
  :open <dir>        attach a durable database (snapshot + write-ahead log,
                     created if absent; crash recovery runs on open)
  :insert <clause>   apply one clause — schema R(U). or R('a'). — logged
                     to the write-ahead log when a store is attached
  :save              checkpoint the attached store (snapshot + log reset)
  :save <file>       write the database back out in the text format
  :sync              fsync the write-ahead log now
  :close             detach the durable database (files stay on disk)
  :schema            show the schema and its <i,k> classification
  :db                dump the database
  :classify <query>  language fragment + complexity bound (paper theorems)
  :explain <query>   formula metrics, safe-evaluation ranges + the optimized
                     query plan (passes, estimates, early-trip warnings)
  :check <query|file.dl>   static analysis: spanned diagnostics with paper
                     citations + a <i,k> complexity certificate (no evaluation)
  :datalog <file> [stratified]   run a Datalog¬ program (default: inflationary)
  :active            toggle active-domain vs safe evaluation
  :budget <n>        set the quantifier-range budget
  :deadline <ms>     wall-clock limit per evaluation (0 = unlimited)
  :mem <bytes>       memory budget for materialised values (0 = unlimited)
  :threads <n>       worker threads for parallel evaluation (1 = sequential)
  :help  :quit";

impl Default for Shell {
    fn default() -> Self {
        Shell::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn loaded_shell() -> Shell {
        let sh = Shell::new();
        // build the graph database inline rather than from a file
        {
            let store = sh.store();
            let mut s = store.write().unwrap();
            let (_schema, instance) = parse_database(
                "schema G(U, U).\nG('a','b').\nG('b','c').\nG('c','a').",
                s.universe_mut(),
            )
            .unwrap();
            s.set_instance(instance);
        }
        sh
    }

    #[test]
    fn queries_and_commands_flow() {
        let mut sh = loaded_shell();
        let out = sh.command("{[x:U, y:U] | G(x, y)}").unwrap().unwrap();
        assert!(out.contains("3 rows"), "{out}");
        let schema = sh.command(":schema").unwrap().unwrap();
        assert!(schema.contains("G(U, U)"), "{schema}");
        assert!(schema.contains("<0,0>-database schema"), "{schema}");
        let dump = sh.command(":db").unwrap().unwrap();
        assert!(dump.contains("G('a', 'b')."), "{dump}");
    }

    #[test]
    fn classify_and_explain() {
        let mut sh = loaded_shell();
        let c = sh
            .command(":classify {[x:U, y:U] | G(x, y)}")
            .unwrap()
            .unwrap();
        assert!(c.contains("RR-(CALC_0^0)"), "{c}");
        let e = sh
            .command(":explain {[x:U, y:U] | G(x, y)}")
            .unwrap()
            .unwrap();
        assert!(e.contains("r(x): 3 candidates"), "{e}");
        // the optimized plan follows the ranges section; the flat
        // conjunctive query takes the columnar kernel path
        assert!(e.contains("plan: calc (safe)"), "{e}");
        assert!(e.contains("join-algorithms"), "{e}");
        assert!(e.contains("columnar join kernels"), "{e}");
        assert!(e.contains("scan G"), "{e}");
    }

    #[test]
    fn budget_and_mode_toggles() {
        let mut sh = loaded_shell();
        assert!(sh.command(":budget 4").unwrap().unwrap().contains('4'));
        // a set-typed head now exceeds the budget under active domains
        sh.command(":active").unwrap();
        let err = sh.command("{[X:{U}] | X = X}").unwrap_err();
        assert!(err.contains("cardinality"), "{err}");
        sh.command(":active").unwrap(); // back to safe
        assert!(sh.command(":budget notanumber").is_err());
    }

    #[test]
    fn tripped_budgets_report_diagnostics_and_shell_survives() {
        let mut sh = loaded_shell();
        // Memory budget: a handful of bytes cannot hold even one answer row.
        sh.command(":mem 8").unwrap();
        let err = sh.command("{[x:U, y:U] | G(x, y)}").unwrap_err();
        assert!(err.contains("memory"), "{err}");
        assert!(err.contains("budgets:"), "{err}");
        assert!(err.contains("8 bytes"), "{err}");
        sh.command(":mem 0").unwrap();

        // Zero step fuel trips immediately, in both evaluation modes.
        sh.config.max_steps = 0;
        let err = sh.command("{[x:U, y:U] | G(x, y)}").unwrap_err();
        assert!(err.contains("step"), "{err}");
        assert!(err.contains("budgets:"), "{err}");
        sh.command(":active").unwrap();
        let err = sh.command("{[x:U, y:U] | G(x, y)}").unwrap_err();
        assert!(err.contains("step"), "{err}");
        sh.command(":active").unwrap();
        sh.config.max_steps = u64::MAX;

        // The shell is still fully usable after every trip.
        let out = sh.command("{[x:U, y:U] | G(x, y)}").unwrap().unwrap();
        assert!(out.contains("3 rows"), "{out}");
    }

    #[test]
    fn deadline_and_mem_commands() {
        let mut sh = loaded_shell();
        let out = sh.command(":deadline 250").unwrap().unwrap();
        assert!(out.contains("250 ms"), "{out}");
        assert_eq!(sh.config.deadline, Some(Duration::from_millis(250)));
        let out = sh.command(":deadline 0").unwrap().unwrap();
        assert!(out.contains("unlimited"), "{out}");
        assert_eq!(sh.config.deadline, None);

        let out = sh.command(":mem 4096").unwrap().unwrap();
        assert!(out.contains("4096 bytes"), "{out}");
        assert_eq!(sh.config.max_memory_bytes, 4096);
        let out = sh.command(":mem 0").unwrap().unwrap();
        assert!(out.contains("unlimited"), "{out}");
        assert_eq!(sh.config.max_memory_bytes, u64::MAX);

        assert!(sh.command(":deadline soon").is_err());
        assert!(sh.command(":mem lots").is_err());
    }

    #[test]
    fn datalog_resource_errors_survive() {
        let mut sh = loaded_shell();
        sh.config.max_steps = 1;
        let dir = std::env::temp_dir().join("nestdb_shell_dl_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("tc.dl");
        std::fs::write(
            &path,
            "rel tc(U, U).\ntc(x, y) :- G(x, y).\ntc(x, y) :- tc(x, z), G(z, y).",
        )
        .unwrap();
        let err = sh
            .command(&format!(":datalog {}", path.display()))
            .unwrap_err();
        assert!(err.contains("step"), "{err}");
        assert!(err.contains("budgets:"), "{err}");
        sh.config.max_steps = u64::MAX;
        let out = sh
            .command(&format!(":datalog {}", path.display()))
            .unwrap()
            .unwrap();
        assert!(out.contains("tc: 9 facts"), "{out}");
    }

    #[test]
    fn errors_and_noise_lines() {
        let mut sh = loaded_shell();
        assert_eq!(sh.command("").unwrap(), None);
        assert_eq!(sh.command("% comment").unwrap(), None);
        assert!(sh.command(":nope").is_err());
        assert!(sh.command("{[x:U] | Missing(x)}").is_err());
        assert_eq!(sh.command(":quit").unwrap_err(), "quit");
        assert!(sh.command(":load /no/such/file.no").is_err());
    }

    #[test]
    fn help_lists_commands() {
        let mut sh = Shell::new();
        let h = sh.command(":help").unwrap().unwrap();
        for cmd in [
            ":load",
            ":open",
            ":insert",
            ":sync",
            ":close",
            ":classify",
            ":explain",
            ":check",
            ":datalog",
            ":budget",
            ":deadline",
            ":mem",
            ":threads",
        ] {
            assert!(h.contains(cmd), "{h}");
        }
    }

    #[test]
    fn check_renders_certificate_for_clean_query() {
        let mut sh = loaded_shell();
        let out = sh
            .command(":check {[x:U, y:U] | G(x, y)}")
            .unwrap()
            .unwrap();
        assert!(out.contains("certificate:"), "{out}");
        assert!(out.contains("RR-(CALC_0^0)"), "{out}");
        assert!(out.contains("LOGSPACE"), "{out}");
        assert!(
            out.contains("restricted by rule 1 (Definition 5.2)"),
            "{out}"
        );
    }

    #[test]
    fn check_renders_spanned_diagnostics_with_carets() {
        let mut sh = loaded_shell();
        let out = sh.command(":check {[x:U] | H(x)}").unwrap().unwrap();
        assert!(out.contains("error[TY001]"), "{out}");
        assert!(out.contains('^'), "{out}");
        assert!(out.contains("no certificate"), "{out}");
    }

    #[test]
    fn check_analyzes_datalog_files() {
        let mut sh = loaded_shell();
        let dir = std::env::temp_dir().join("nestdb_shell_check_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("tc.dl");
        std::fs::write(
            &path,
            "rel tc(U, U).\ntc(x, y) :- G(x, y).\ntc(x, y) :- tc(x, z), G(z, y).",
        )
        .unwrap();
        let out = sh
            .command(&format!(":check {}", path.display()))
            .unwrap()
            .unwrap();
        assert!(out.contains("inf-Datalog¬_0^0"), "{out}");
        assert!(out.contains("PTIME"), "{out}");
        assert!(sh.command(":check").is_err());
    }

    #[test]
    fn check_is_pure_under_any_budget_and_thread_count() {
        let mut sh = loaded_shell();
        // zero fuel: evaluation would trip instantly, analysis must not
        sh.config.max_steps = 0;
        sh.command(":threads 4").unwrap();
        let out = sh
            .command(":check {[x:U, y:U] | G(x, y)}")
            .unwrap()
            .unwrap();
        assert!(out.contains("certificate:"), "{out}");
        // …while evaluation of the same query does trip
        assert!(sh.command("{[x:U, y:U] | G(x, y)}").is_err());
    }

    #[test]
    fn parse_errors_show_caret_excerpts() {
        let mut sh = loaded_shell();
        let err = sh.command("{[x:U] | G(x,, x)}").unwrap_err();
        assert!(err.contains("line 1"), "{err}");
        assert!(err.contains('^'), "{err}");
    }

    fn scratch(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("nestdb_shell_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn durable_open_insert_query_reopen() {
        let dir = scratch("durable");
        let d = dir.display().to_string();
        let mut sh = Shell::new();
        let out = sh.command(&format!(":open {d}")).unwrap().unwrap();
        assert!(out.contains("created"), "{out}");
        sh.command(":insert schema G(U, U).").unwrap();
        sh.command(":insert G('a', 'b').").unwrap();
        sh.command(":insert G('b', 'c').").unwrap();
        let out = sh.command("{[x:U, y:U] | G(x, y)}").unwrap().unwrap();
        assert!(out.contains("2 rows"), "{out}");
        let out = sh.command(":save").unwrap().unwrap();
        assert!(out.contains("epoch 1"), "{out}");
        sh.command(":insert G('c', 'd').").unwrap();
        // Duplicate inserts are reported and not logged.
        let out = sh.command(":insert G('c', 'd').").unwrap().unwrap();
        assert!(out.contains("already"), "{out}");
        // Invalid mutations surface as messages, never a panic.
        assert!(sh.command(":insert H('a').").is_err());
        assert!(sh.command(":insert G('a').").is_err());
        drop(sh);

        // A fresh shell recovers: 2 checkpointed tuples + 1 replayed frame.
        let mut sh = Shell::new();
        let out = sh.command(&format!(":open {d}")).unwrap().unwrap();
        assert!(out.contains("1 relations, 3 tuples"), "{out}");
        assert!(out.contains("1 frames replayed"), "{out}");
        let out = sh.command("{[x:U, y:U] | G(x, y)}").unwrap().unwrap();
        assert!(out.contains("3 rows"), "{out}");
        let out = sh.command(":sync").unwrap().unwrap();
        assert!(out.contains("fsynced"), "{out}");
        let out = sh.command(":close").unwrap().unwrap();
        assert!(out.contains("detached"), "{out}");
        assert!(sh.command(":sync").is_err(), "no store attached any more");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn durable_load_imports_into_the_store() {
        let dir = scratch("import");
        std::fs::create_dir_all(&dir).unwrap();
        let file = dir.join("graph.no");
        std::fs::write(&file, "schema G(U, U).\nG('a','b').\nG('b','c').\n").unwrap();
        let store = dir.join("store");
        let mut sh = Shell::new();
        sh.command(&format!(":open {}", store.display())).unwrap();
        let out = sh
            .command(&format!(":load {}", file.display()))
            .unwrap()
            .unwrap();
        assert!(out.contains("+1 relations, +2 tuples"), "{out}");
        drop(sh);
        let mut sh = Shell::new();
        sh.command(&format!(":open {}", store.display())).unwrap();
        let out = sh.command("{[x:U, y:U] | G(x, y)}").unwrap().unwrap();
        assert!(out.contains("2 rows"), "{out}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn durable_open_reports_corruption_without_panic() {
        let dir = scratch("corrupt");
        let d = dir.display().to_string();
        let mut sh = Shell::new();
        sh.command(&format!(":open {d}")).unwrap();
        sh.command(":insert schema G(U, U).").unwrap();
        sh.command(":insert G('a', 'b').").unwrap();
        sh.command(":insert G('b', 'c').").unwrap();
        sh.command(":close").unwrap();
        // Flip a payload byte of the first frame — live frames follow, so
        // this is mid-log corruption and :open must refuse, structurally.
        let wal = dir.join(no_storage::WAL_FILE);
        let mut bytes = std::fs::read(&wal).unwrap();
        let at =
            no_storage::wal::WAL_HEADER_LEN as usize + no_storage::wal::FRAME_OVERHEAD as usize + 2;
        bytes[at] ^= 0x20;
        std::fs::write(&wal, &bytes).unwrap();
        let err = sh.command(&format!(":open {d}")).unwrap_err();
        assert!(err.contains("corrupt"), "{err}");
        assert!(err.contains("checksum"), "{err}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn threads_command_controls_parallelism() {
        let mut sh = loaded_shell();
        let out = sh.command(":threads 4").unwrap().unwrap();
        assert!(out.contains('4'), "{out}");
        assert_eq!(sh.threads, 4);
        assert_eq!(sh.session.parallelism(), 4);
        // queries and datalog still give the same answers at 4 workers
        let out = sh.command("{[x:U, y:U] | G(x, y)}").unwrap().unwrap();
        assert!(out.contains("3 rows"), "{out}");
        sh.command(":active").unwrap();
        let out = sh.command("{[x:U, y:U] | G(x, y)}").unwrap().unwrap();
        assert!(out.contains("3 rows"), "{out}");
        sh.command(":active").unwrap();
        let out = sh.command(":threads 1").unwrap().unwrap();
        assert!(out.contains("sequential"), "{out}");
        assert!(sh.command(":threads 0").is_err());
        assert!(sh.command(":threads many").is_err());
    }
}
