//! `nestdb` — an interactive shell for complex-object databases.
//!
//! ```text
//! $ cargo run --bin nestdb -- data/graph.no
//! nestdb> {[x:U, y:U] | G(x, y)}
//! nestdb> :classify {[u:U, v:U] | ifp(S; x:U, y:U | G(x,y) \/ exists z:U (S(x,z) /\ G(z,y)))(u, v)}
//! nestdb> :help
//! ```
//!
//! All logic lives in [`nestdb::shell::Shell`]; this binary is the stdin
//! loop.

use nestdb::check::CorpusReport;
use nestdb::object::text::parse_database;
use nestdb::object::{Schema, Universe};
use nestdb::shell::Shell;
use std::io::{self, BufRead, Write};

/// `nestdb analyze [--format json|text] [--deny] [--db <file.no>] <files…>`
///
/// Static analysis over query files: `.dl` files are Datalog¬ programs,
/// anything else is one CALC query per non-comment line. `--deny` exits
/// nonzero when *any* diagnostic (even a warning) is emitted — the CI
/// gate. Prints the report to stdout; never evaluates anything.
fn run_analyze(args: &[String]) -> i32 {
    let mut format = "text".to_string();
    let mut deny = false;
    let mut db: Option<String> = None;
    let mut files: Vec<String> = Vec::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--format" => match it.next() {
                Some(f) if f == "json" || f == "text" => format = f.clone(),
                other => {
                    eprintln!("error: --format needs json or text, got {other:?}");
                    return 2;
                }
            },
            "--deny" => deny = true,
            "--db" => match it.next() {
                Some(p) => db = Some(p.clone()),
                None => {
                    eprintln!("error: --db needs a database file");
                    return 2;
                }
            },
            flag if flag.starts_with("--") => {
                eprintln!("error: unknown flag {flag}");
                return 2;
            }
            file => files.push(file.to_string()),
        }
    }
    if files.is_empty() {
        eprintln!("usage: nestdb analyze [--format json|text] [--deny] [--db <file.no>] <files…>");
        return 2;
    }
    let mut universe = Universe::new();
    let schema = match &db {
        Some(path) => {
            let src = match std::fs::read_to_string(path) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("error: cannot read {path}: {e}");
                    return 2;
                }
            };
            match parse_database(&src, &mut universe) {
                Ok((schema, _instance)) => schema,
                Err(e) => {
                    eprintln!("error: {path}: {e}");
                    return 2;
                }
            }
        }
        None => Schema::new(),
    };
    let mut report = CorpusReport::default();
    for file in &files {
        let src = match std::fs::read_to_string(file) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("error: cannot read {file}: {e}");
                return 2;
            }
        };
        report.add_file(&schema, file, &src, &mut universe);
    }
    match format.as_str() {
        "json" => println!("{}", report.to_json()),
        _ => println!("{}", report.render_text()),
    }
    if deny && report.has_diagnostics() {
        let (errors, warnings) = report.diagnostic_counts();
        eprintln!("analyze --deny: {errors} error(s), {warnings} warning(s)");
        return 1;
    }
    0
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("analyze") {
        std::process::exit(run_analyze(&args[1..]));
    }
    let mut shell = Shell::new();
    for path in &args {
        match shell.load(path) {
            Ok(msg) => println!("{msg}"),
            Err(e) => {
                eprintln!("error: {e}");
                std::process::exit(1);
            }
        }
    }
    let stdin = io::stdin();
    let interactive = std::env::var_os("TERM").is_some();
    if interactive {
        println!("nestdb — tractable query languages for complex objects (:help for help)");
    }
    let mut lines = stdin.lock().lines();
    loop {
        if interactive {
            print!("nestdb> ");
            let _ = io::stdout().flush();
        }
        let Some(Ok(line)) = lines.next() else { break };
        match shell.command(&line) {
            Ok(Some(out)) => println!("{out}"),
            Ok(None) => {}
            Err(e) if e == "quit" => break,
            Err(e) => println!("error: {e}"),
        }
    }
}
