//! `nestdb` — an interactive shell for complex-object databases.
//!
//! ```text
//! $ cargo run --bin nestdb -- data/graph.no
//! nestdb> {[x:U, y:U] | G(x, y)}
//! nestdb> :classify {[u:U, v:U] | ifp(S; x:U, y:U | G(x,y) \/ exists z:U (S(x,z) /\ G(z,y)))(u, v)}
//! nestdb> :help
//! ```
//!
//! All logic lives in [`nestdb::shell::Shell`]; this binary is the stdin
//! loop.

use nestdb::check::CorpusReport;
use nestdb::object::text::parse_database;
use nestdb::object::{Instance, Schema, Universe};
use nestdb::plan::{json_escape, CalcMode, DatalogMode};
use nestdb::shell::Shell;
use nestdb::{ExplainTarget, Session};
use std::io::{self, BufRead, Write};

/// `nestdb analyze [--format json|text] [--deny] [--db <file.no>] <files…>`
///
/// Static analysis over query files: `.dl` files are Datalog¬ programs,
/// anything else is one CALC query per non-comment line. `--deny` exits
/// nonzero when *any* diagnostic (even a warning) is emitted — the CI
/// gate. Prints the report to stdout; never evaluates anything.
fn run_analyze(args: &[String]) -> i32 {
    let mut format = "text".to_string();
    let mut deny = false;
    let mut db: Option<String> = None;
    let mut files: Vec<String> = Vec::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--format" => match it.next() {
                Some(f) if f == "json" || f == "text" => format = f.clone(),
                other => {
                    eprintln!("error: --format needs json or text, got {other:?}");
                    return 2;
                }
            },
            "--deny" => deny = true,
            "--db" => match it.next() {
                Some(p) => db = Some(p.clone()),
                None => {
                    eprintln!("error: --db needs a database file");
                    return 2;
                }
            },
            flag if flag.starts_with("--") => {
                eprintln!("error: unknown flag {flag}");
                return 2;
            }
            file => files.push(file.to_string()),
        }
    }
    if files.is_empty() {
        eprintln!("usage: nestdb analyze [--format json|text] [--deny] [--db <file.no>] <files…>");
        return 2;
    }
    let mut universe = Universe::new();
    let schema = match &db {
        Some(path) => {
            let src = match std::fs::read_to_string(path) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("error: cannot read {path}: {e}");
                    return 2;
                }
            };
            match parse_database(&src, &mut universe) {
                Ok((schema, _instance)) => schema,
                Err(e) => {
                    eprintln!("error: {path}: {e}");
                    return 2;
                }
            }
        }
        None => Schema::new(),
    };
    let mut report = CorpusReport::default();
    for file in &files {
        let src = match std::fs::read_to_string(file) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("error: cannot read {file}: {e}");
                return 2;
            }
        };
        report.add_file(&schema, file, &src, &mut universe);
    }
    match format.as_str() {
        "json" => println!("{}", report.to_json()),
        _ => println!("{}", report.render_text()),
    }
    if deny && report.has_diagnostics() {
        let (errors, warnings) = report.diagnostic_counts();
        eprintln!("analyze --deny: {errors} error(s), {warnings} warning(s)");
        return 1;
    }
    0
}

/// `nestdb explain [--format json|text] [--deny] [--db <file.no>] <files…>`
///
/// Compile query files to optimized plans and print them without
/// evaluating. `.dl` files are Datalog¬ programs (planned under the
/// semi-naive delta rewrite), anything else is one CALC query per
/// non-comment line (planned under safe evaluation). `--db` supplies the
/// schema and the statistics the optimizer orders quantifiers by.
/// `--deny` exits nonzero when any input fails to plan — the CI gate.
fn run_explain(args: &[String]) -> i32 {
    let mut format = "text".to_string();
    let mut deny = false;
    let mut db: Option<String> = None;
    let mut files: Vec<String> = Vec::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--format" => match it.next() {
                Some(f) if f == "json" || f == "text" => format = f.clone(),
                other => {
                    eprintln!("error: --format needs json or text, got {other:?}");
                    return 2;
                }
            },
            "--deny" => deny = true,
            "--db" => match it.next() {
                Some(p) => db = Some(p.clone()),
                None => {
                    eprintln!("error: --db needs a database file");
                    return 2;
                }
            },
            flag if flag.starts_with("--") => {
                eprintln!("error: unknown flag {flag}");
                return 2;
            }
            file => files.push(file.to_string()),
        }
    }
    if files.is_empty() {
        eprintln!("usage: nestdb explain [--format json|text] [--deny] [--db <file.no>] <files…>");
        return 2;
    }
    let mut universe = Universe::new();
    let instance = match &db {
        Some(path) => {
            let src = match std::fs::read_to_string(path) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("error: cannot read {path}: {e}");
                    return 2;
                }
            };
            match parse_database(&src, &mut universe) {
                Ok((_schema, instance)) => instance,
                Err(e) => {
                    eprintln!("error: {path}: {e}");
                    return 2;
                }
            }
        }
        None => Instance::empty(Schema::new()),
    };
    let session = Session::default();
    // (source label, Ok(rendered plan) | Err(message))
    let mut results: Vec<(String, Result<String, String>)> = Vec::new();
    let json = format == "json";
    for file in &files {
        let src = match std::fs::read_to_string(file) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("error: cannot read {file}: {e}");
                return 2;
            }
        };
        if file.ends_with(".dl") {
            let label = file.clone();
            let outcome = nestdb::datalog::parse_program(&src, &mut universe)
                .map_err(|e| e.render(&src))
                .and_then(|program| {
                    session
                        .explain(
                            &instance,
                            ExplainTarget::Datalog {
                                program: &program,
                                mode: DatalogMode::SemiNaive,
                            },
                        )
                        .map(|p| {
                            if json {
                                p.render_json()
                            } else {
                                p.render_text()
                            }
                        })
                        .map_err(|e| e.to_string())
                });
            results.push((label, outcome));
        } else {
            for (lineno, line) in src.lines().enumerate() {
                let line = line.trim();
                if line.is_empty() || line.starts_with('%') {
                    continue;
                }
                let label = format!("{file}:{}", lineno + 1);
                let outcome = nestdb::core::parse_query(line, &mut universe)
                    .map_err(|e| e.render(line))
                    .and_then(|q| {
                        session
                            .explain(
                                &instance,
                                ExplainTarget::Calc {
                                    query: &q,
                                    mode: CalcMode::Safe,
                                },
                            )
                            .map(|p| {
                                if json {
                                    p.render_json()
                                } else {
                                    p.render_text()
                                }
                            })
                            .map_err(|e| e.to_string())
                    });
                results.push((label, outcome));
            }
        }
    }
    let failures = results.iter().filter(|(_, r)| r.is_err()).count();
    if json {
        let items: Vec<String> = results
            .iter()
            .map(|(label, r)| match r {
                Ok(plan) => format!(
                    "{{\"source\": \"{}\", \"plan\": {plan}}}",
                    json_escape(label)
                ),
                Err(e) => format!(
                    "{{\"source\": \"{}\", \"error\": \"{}\"}}",
                    json_escape(label),
                    json_escape(e)
                ),
            })
            .collect();
        println!(
            "{{\"plans\": [{}], \"failures\": {failures}}}",
            items.join(", ")
        );
    } else {
        for (label, r) in &results {
            println!("== {label} ==");
            match r {
                Ok(plan) => println!("{plan}"),
                Err(e) => println!("error: {e}"),
            }
        }
    }
    if deny && failures > 0 {
        eprintln!("explain --deny: {failures} input(s) failed to plan");
        return 1;
    }
    0
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("analyze") {
        std::process::exit(run_analyze(&args[1..]));
    }
    if args.first().map(String::as_str) == Some("explain") {
        std::process::exit(run_explain(&args[1..]));
    }
    let mut shell = Shell::new();
    for path in &args {
        match shell.load(path) {
            Ok(msg) => println!("{msg}"),
            Err(e) => {
                eprintln!("error: {e}");
                std::process::exit(1);
            }
        }
    }
    let stdin = io::stdin();
    let interactive = std::env::var_os("TERM").is_some();
    if interactive {
        println!("nestdb — tractable query languages for complex objects (:help for help)");
    }
    let mut lines = stdin.lock().lines();
    loop {
        if interactive {
            print!("nestdb> ");
            let _ = io::stdout().flush();
        }
        let Some(Ok(line)) = lines.next() else { break };
        match shell.command(&line) {
            Ok(Some(out)) => println!("{out}"),
            Ok(None) => {}
            Err(e) if e == "quit" => break,
            Err(e) => println!("error: {e}"),
        }
    }
}
