//! `nestdb` — an interactive shell for complex-object databases.
//!
//! ```text
//! $ cargo run --bin nestdb -- data/graph.no
//! nestdb> {[x:U, y:U] | G(x, y)}
//! nestdb> :classify {[u:U, v:U] | ifp(S; x:U, y:U | G(x,y) \/ exists z:U (S(x,z) /\ G(z,y)))(u, v)}
//! nestdb> :help
//! ```
//!
//! All logic lives in [`nestdb::shell::Shell`]; this binary is the stdin
//! loop.

use nestdb::shell::Shell;
use std::io::{self, BufRead, Write};

fn main() {
    let mut shell = Shell::new();
    let args: Vec<String> = std::env::args().skip(1).collect();
    for path in &args {
        match shell.load(path) {
            Ok(msg) => println!("{msg}"),
            Err(e) => {
                eprintln!("error: {e}");
                std::process::exit(1);
            }
        }
    }
    let stdin = io::stdin();
    let interactive = std::env::var_os("TERM").is_some();
    if interactive {
        println!("nestdb — tractable query languages for complex objects (:help for help)");
    }
    let mut lines = stdin.lock().lines();
    loop {
        if interactive {
            print!("nestdb> ");
            let _ = io::stdout().flush();
        }
        let Some(Ok(line)) = lines.next() else { break };
        match shell.command(&line) {
            Ok(Some(out)) => println!("{out}"),
            Ok(None) => {}
            Err(e) if e == "quit" => break,
            Err(e) => println!("error: {e}"),
        }
    }
}
