//! `nestdb` — an interactive shell for complex-object databases.
//!
//! ```text
//! $ cargo run --bin nestdb -- data/graph.no
//! nestdb> {[x:U, y:U] | G(x, y)}
//! nestdb> :classify {[u:U, v:U] | ifp(S; x:U, y:U | G(x,y) \/ exists z:U (S(x,z) /\ G(z,y)))(u, v)}
//! nestdb> :help
//! ```
//!
//! Subcommands: `analyze` (static analysis), `explain` (plans without
//! evaluation), `open` (shell attached to a durable database directory),
//! `save` (import a text database into a durable directory and
//! checkpoint), `verify` (read-only integrity check of a durable
//! directory), `serve` (TCP query service speaking newline-delimited
//! JSON requests). With no subcommand, arguments are text database files
//! loaded into an in-memory shell.
//!
//! All logic lives in [`nestdb::shell::Shell`]; this binary is the stdin
//! loop.

use nestdb::check::{load_database, CorpusReport};
use nestdb::object::{Instance, Schema, Universe};
use nestdb::plan::json_escape;
use nestdb::proto::{Lang, Op, Request};
use nestdb::server::ServerConfig;
use nestdb::shell::Shell;
use nestdb::storage::{Db, DbOptions};
use nestdb::{Session, Store};
use std::io::{self, BufRead, Write};
use std::path::Path;
use std::sync::{Arc, RwLock};

/// A session over the database behind `--db` (or an empty one): the
/// single dispatch point `analyze` and `explain` route through.
fn session_for(db: Option<&String>) -> Result<Session, String> {
    let (universe, instance) = match db {
        Some(path) => {
            let loaded = load_database(path)?;
            (loaded.universe, loaded.instance)
        }
        None => (Universe::new(), Instance::empty(Schema::new())),
    };
    Ok(Session::builder()
        .store(Arc::new(RwLock::new(Store::with_data(universe, instance))))
        .build())
}

/// `nestdb analyze [--format json|text] [--deny] [--db <file.no>] <files…>`
///
/// Static analysis over query files: `.dl` files are Datalog¬ programs,
/// anything else is one CALC query per non-comment line. `--deny` exits
/// nonzero when *any* diagnostic (even a warning) is emitted — the CI
/// gate. Prints the report to stdout; never evaluates anything.
fn run_analyze(args: &[String]) -> i32 {
    let mut format = "text".to_string();
    let mut deny = false;
    let mut db: Option<String> = None;
    let mut files: Vec<String> = Vec::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--format" => match it.next() {
                Some(f) if f == "json" || f == "text" => format = f.clone(),
                other => {
                    eprintln!("error: --format needs json or text, got {other:?}");
                    return 2;
                }
            },
            "--deny" => deny = true,
            "--db" => match it.next() {
                Some(p) => db = Some(p.clone()),
                None => {
                    eprintln!("error: --db needs a database file");
                    return 2;
                }
            },
            flag if flag.starts_with("--") => {
                eprintln!("error: unknown flag {flag}");
                return 2;
            }
            file => files.push(file.to_string()),
        }
    }
    if files.is_empty() {
        eprintln!("usage: nestdb analyze [--format json|text] [--deny] [--db <file.no>] <files…>");
        return 2;
    }
    let session = match session_for(db.as_ref()) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: {e}");
            return 2;
        }
    };
    let mut report = CorpusReport::default();
    for file in &files {
        let src = match std::fs::read_to_string(file) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("error: cannot read {file}: {e}");
                return 2;
            }
        };
        report.add_file(&session, file, &src);
    }
    match format.as_str() {
        "json" => println!("{}", report.to_json()),
        _ => println!("{}", report.render_text()),
    }
    if deny && report.has_diagnostics() {
        let (errors, warnings) = report.diagnostic_counts();
        eprintln!("analyze --deny: {errors} error(s), {warnings} warning(s)");
        return 1;
    }
    0
}

/// `nestdb explain [--format json|text] [--deny] [--db <file.no>] <files…>`
///
/// Compile query files to optimized plans and print them without
/// evaluating. `.dl` files are Datalog¬ programs (planned under the
/// semi-naive delta rewrite), anything else is one CALC query per
/// non-comment line (planned under safe evaluation). `--db` supplies the
/// schema and the statistics the optimizer orders quantifiers by.
/// `--deny` exits nonzero when any input fails to plan — the CI gate.
fn run_explain(args: &[String]) -> i32 {
    let mut format = "text".to_string();
    let mut deny = false;
    let mut db: Option<String> = None;
    let mut files: Vec<String> = Vec::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--format" => match it.next() {
                Some(f) if f == "json" || f == "text" => format = f.clone(),
                other => {
                    eprintln!("error: --format needs json or text, got {other:?}");
                    return 2;
                }
            },
            "--deny" => deny = true,
            "--db" => match it.next() {
                Some(p) => db = Some(p.clone()),
                None => {
                    eprintln!("error: --db needs a database file");
                    return 2;
                }
            },
            flag if flag.starts_with("--") => {
                eprintln!("error: unknown flag {flag}");
                return 2;
            }
            file => files.push(file.to_string()),
        }
    }
    if files.is_empty() {
        eprintln!("usage: nestdb explain [--format json|text] [--deny] [--db <file.no>] <files…>");
        return 2;
    }
    let session = match session_for(db.as_ref()) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: {e}");
            return 2;
        }
    };
    // (source label, Ok(rendered plan) | Err(message))
    let mut results: Vec<(String, Result<String, String>)> = Vec::new();
    let json = format == "json";
    let explain = |lang: Lang, text: &str| -> Result<String, String> {
        let resp = session.run(&Request {
            op: Op::Explain,
            lang,
            text: text.to_string(),
            ..Request::default()
        });
        match resp.explain {
            Some(plan) => Ok(if json { plan.json } else { plan.text }),
            None => Err(resp
                .error
                .map(|e| e.message)
                .unwrap_or_else(|| "no plan in response".to_string())),
        }
    };
    for file in &files {
        let src = match std::fs::read_to_string(file) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("error: cannot read {file}: {e}");
                return 2;
            }
        };
        if file.ends_with(".dl") {
            results.push((file.clone(), explain(Lang::Datalog, &src)));
        } else {
            for (lineno, line) in src.lines().enumerate() {
                let line = line.trim();
                if line.is_empty() || line.starts_with('%') {
                    continue;
                }
                let label = format!("{file}:{}", lineno + 1);
                results.push((label, explain(Lang::Calc, line)));
            }
        }
    }
    let failures = results.iter().filter(|(_, r)| r.is_err()).count();
    if json {
        let items: Vec<String> = results
            .iter()
            .map(|(label, r)| match r {
                Ok(plan) => format!(
                    "{{\"source\": \"{}\", \"plan\": {plan}}}",
                    json_escape(label)
                ),
                Err(e) => format!(
                    "{{\"source\": \"{}\", \"error\": \"{}\"}}",
                    json_escape(label),
                    json_escape(e)
                ),
            })
            .collect();
        println!(
            "{{\"plans\": [{}], \"failures\": {failures}}}",
            items.join(", ")
        );
    } else {
        for (label, r) in &results {
            println!("== {label} ==");
            match r {
                Ok(plan) => println!("{plan}"),
                Err(e) => println!("error: {e}"),
            }
        }
    }
    if deny && failures > 0 {
        eprintln!("explain --deny: {failures} input(s) failed to plan");
        return 1;
    }
    0
}

/// `nestdb verify <path…>`
///
/// Read-only integrity check. Directories are verified as durable
/// databases: the snapshot is decoded, the write-ahead log is scanned
/// frame by frame, and every checksum is checked — without modifying a
/// byte on disk. Plain files are loaded as text databases. Exits nonzero
/// if any path fails, printing the structured error (never panicking) so
/// CI and operators can gate on it.
fn run_verify(args: &[String]) -> i32 {
    if args.is_empty() {
        eprintln!("usage: nestdb verify <path…>");
        return 2;
    }
    let mut failures = 0;
    for path in args {
        let p = Path::new(path);
        if p.is_dir() {
            match nestdb::storage::verify(p) {
                Ok(r) => {
                    let wal = match r.wal_epoch {
                        Some(e) => format!("wal epoch {e} ({} frames)", r.wal_frames),
                        None => "no wal".to_string(),
                    };
                    println!(
                        "{path}: ok — snapshot epoch {} ({} bytes), {wal}; \
                         {} atoms, {} relations, {} tuples",
                        r.snapshot_epoch, r.snapshot_bytes, r.atoms, r.relations, r.tuples,
                    );
                    if r.stale_wal {
                        println!(
                            "{path}: note — wal predates the snapshot; \
                             it will be discarded on open"
                        );
                    }
                    if r.torn_tail_bytes > 0 {
                        println!(
                            "{path}: note — torn tail of {} byte(s); \
                             it will be truncated on open",
                            r.torn_tail_bytes,
                        );
                    }
                }
                Err(e) => {
                    eprintln!("{path}: FAILED — {e}");
                    failures += 1;
                }
            }
        } else {
            match load_database(path) {
                Ok(loaded) => println!("{path}: ok — {}", loaded.summary),
                Err(e) => {
                    eprintln!("{path}: FAILED — {e}");
                    failures += 1;
                }
            }
        }
    }
    if failures > 0 {
        1
    } else {
        0
    }
}

/// `nestdb save <file.no> <dir>`
///
/// Import a text database file into a durable directory (created if it
/// does not exist; recovered through the usual snapshot + WAL replay if
/// it does) and checkpoint, folding the imported mutations into a fresh
/// snapshot.
fn run_save(args: &[String]) -> i32 {
    let [src, dir] = args else {
        eprintln!("usage: nestdb save <file.no> <dir>");
        return 2;
    };
    let text = match std::fs::read_to_string(src) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: cannot read {src}: {e}");
            return 1;
        }
    };
    let mut db = match Db::open(Path::new(dir), DbOptions::default()) {
        Ok(db) => db,
        Err(e) => {
            eprintln!("error: {e}");
            return 1;
        }
    };
    let stats = match db.import_text(&text) {
        Ok(stats) => stats,
        Err(e) => {
            eprintln!("error: {e}");
            return 1;
        }
    };
    if let Err(e) = db.save() {
        eprintln!("error: {e}");
        return 1;
    }
    println!(
        "saved {src} into {dir}: +{} relations, +{} tuples (snapshot epoch {})",
        stats.relations_added,
        stats.tuples_added,
        db.epoch(),
    );
    0
}

/// `nestdb serve [--addr host:port] [--db <path>] [--tenant-steps N] [--tenant-refill N]`
///
/// Run the TCP query service: newline-delimited JSON requests in, one
/// JSON response line per request out (wire protocol in DESIGN.md §15).
/// `--db` takes either a durable database directory (opened with
/// recovery; inserts are logged) or a text database file (loaded into
/// memory). `--tenant-steps`/`--tenant-refill` size the per-tenant
/// admission-control buckets in governor steps.
fn run_serve(args: &[String]) -> i32 {
    let mut addr = "127.0.0.1:4617".to_string();
    let mut db: Option<String> = None;
    let mut config = ServerConfig::default();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--addr" => match it.next() {
                Some(a) => addr = a.clone(),
                None => {
                    eprintln!("error: --addr needs host:port");
                    return 2;
                }
            },
            "--db" => match it.next() {
                Some(p) => db = Some(p.clone()),
                None => {
                    eprintln!("error: --db needs a database file or directory");
                    return 2;
                }
            },
            "--tenant-steps" => match it.next().and_then(|v| v.parse().ok()) {
                Some(n) => config.tenant_capacity_steps = n,
                None => {
                    eprintln!("error: --tenant-steps needs a number");
                    return 2;
                }
            },
            "--tenant-refill" => match it.next().and_then(|v| v.parse().ok()) {
                Some(n) => config.tenant_refill_steps_per_sec = n,
                None => {
                    eprintln!("error: --tenant-refill needs a number");
                    return 2;
                }
            },
            flag => {
                eprintln!("error: unknown flag {flag}");
                eprintln!(
                    "usage: nestdb serve [--addr host:port] [--db <path>] \
                     [--tenant-steps N] [--tenant-refill N]"
                );
                return 2;
            }
        }
    }
    let session = match db.as_ref().filter(|p| Path::new(p.as_str()).is_dir()) {
        Some(dir) => {
            // durable directory: open through the protocol so recovery
            // messages surface the same way the shell prints them
            let session = match session_for(None) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("error: {e}");
                    return 2;
                }
            };
            let resp = session.run(&Request {
                op: Op::Open,
                text: dir.clone(),
                ..Request::default()
            });
            match (resp.ok, resp.message, resp.error) {
                (true, Some(msg), _) => println!("{msg}"),
                (true, None, _) => {}
                (false, _, err) => {
                    eprintln!(
                        "error: {}",
                        err.map(|e| e.message)
                            .unwrap_or_else(|| "open failed".into())
                    );
                    return 2;
                }
            }
            session
        }
        None => match session_for(db.as_ref()) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("error: {e}");
                return 2;
            }
        },
    };
    match nestdb::service::serve(&addr, session, config) {
        Ok(server) => {
            println!("nestdb serving on {}", server.local_addr());
            server.join();
            0
        }
        Err(e) => {
            eprintln!("error: cannot bind {addr}: {e}");
            1
        }
    }
}

/// The stdin read-eval-print loop over an already set-up shell.
fn repl(mut shell: Shell) {
    let stdin = io::stdin();
    let interactive = std::env::var_os("TERM").is_some();
    if interactive {
        println!("nestdb — tractable query languages for complex objects (:help for help)");
    }
    let mut lines = stdin.lock().lines();
    loop {
        if interactive {
            print!("nestdb> ");
            let _ = io::stdout().flush();
        }
        let Some(Ok(line)) = lines.next() else { break };
        match shell.command(&line) {
            Ok(Some(out)) => println!("{out}"),
            Ok(None) => {}
            Err(e) if e == "quit" => break,
            Err(e) => println!("error: {e}"),
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("analyze") => std::process::exit(run_analyze(&args[1..])),
        Some("explain") => std::process::exit(run_explain(&args[1..])),
        Some("verify") => std::process::exit(run_verify(&args[1..])),
        Some("save") => std::process::exit(run_save(&args[1..])),
        Some("serve") => std::process::exit(run_serve(&args[1..])),
        Some("open") => {
            // `nestdb open <dir>` — shell attached to a durable database:
            // recovery runs on open, every insert is logged before it is
            // applied, `:save` checkpoints.
            if args.len() != 2 {
                eprintln!("usage: nestdb open <dir>");
                std::process::exit(2);
            }
            let mut shell = Shell::new();
            match shell.command(&format!(":open {}", args[1])) {
                Ok(Some(out)) => println!("{out}"),
                Ok(None) => {}
                Err(e) => {
                    eprintln!("error: {e}");
                    std::process::exit(1);
                }
            }
            repl(shell);
            return;
        }
        _ => {}
    }
    let mut shell = Shell::new();
    for path in &args {
        match shell.load(path) {
            Ok(msg) => println!("{msg}"),
            Err(e) => {
                eprintln!("error: {e}");
                std::process::exit(1);
            }
        }
    }
    repl(shell);
}
