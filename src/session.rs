//! The [`Session`] facade: one handle over every evaluation engine.
//!
//! Historically each engine exposed its own free-function entry points
//! (`eval_query_with`, `safe_eval_governed`, `datalog::eval_governed`,
//! `algebra::eval_governed`, …) and callers wired governors and — since
//! the parallel engine landed — thread pools into each one separately. A
//! [`Session`] bundles that configuration once:
//!
//! ```
//! use nestdb::Session;
//! use nestdb::object::{Instance, RelationSchema, Schema, Type, Universe, Value};
//!
//! let mut u = Universe::new();
//! let schema = Schema::from_relations([RelationSchema::new(
//!     "G",
//!     vec![Type::Atom, Type::Atom],
//! )]);
//! let mut db = Instance::empty(schema);
//! let (a, b) = (u.intern("a"), u.intern("b"));
//! db.insert("G", vec![Value::Atom(a), Value::Atom(b)]);
//!
//! let session = Session::builder().parallelism(4).build();
//! let q = nestdb::core::parse_query("{[x:U, y:U] | G(x, y)}", &mut u).unwrap();
//! let out = session.eval_calc(&db, &q).unwrap();
//! assert_eq!(out.len(), 1);
//! ```
//!
//! Every evaluation through one session draws from the *same* governor
//! allowance — the cross-engine analogue of the rule that all strata of a
//! stratified program share one budget. Callers wanting a fresh budget per
//! query build a fresh session (construction is two `Arc` clones).
//!
//! The free functions remain available and are kept working — they are
//! deprecated in favour of [`Session`] for new code, but existing examples
//! and embeddings compile unchanged.

use crate::error::Error;
use minipool::ThreadPool;
use no_algebra::Expr;
use no_core::eval::{active_order, Evaluator};
use no_core::Query;
use no_datalog::{EvalStats, Idb, Program, Strategy};
use no_object::{Governor, Instance, Limits, Relation, Type};
use no_plan::{CacheKey, CalcMode, DatalogMode, PlanCache, Planned, Planner};
use no_storage::{Db, DbOptions, SyncPolicy};
use std::path::Path;
use std::sync::{Arc, Mutex};

/// How many plans a session keeps in its LRU plan cache.
pub const PLAN_CACHE_CAPACITY: usize = 64;

/// Environment variable consulted for the default worker count when
/// [`SessionBuilder::parallelism`] is not called. Unset, unparsable, or
/// zero values fall back to `1` (sequential).
pub const THREADS_ENV: &str = "NESTDB_THREADS";

fn default_parallelism() -> usize {
    std::env::var(THREADS_ENV)
        .ok()
        .and_then(|s| s.trim().parse::<usize>().ok())
        .filter(|&n| n >= 1)
        .unwrap_or(1)
}

/// Configures and builds a [`Session`].
#[derive(Debug, Clone, Default)]
pub struct SessionBuilder {
    limits: Option<Limits>,
    governor: Option<Governor>,
    parallelism: Option<usize>,
    sync_policy: SyncPolicy,
}

impl SessionBuilder {
    /// Budget limits for a session-owned governor. Ignored when an
    /// explicit [`SessionBuilder::governor`] is supplied.
    pub fn limits(mut self, limits: Limits) -> Self {
        self.limits = Some(limits);
        self
    }

    /// Share an existing governor — e.g. to run session queries under the
    /// same allowance as surrounding work, or to cancel the session from
    /// another thread via [`Governor::cancel`].
    pub fn governor(mut self, governor: Governor) -> Self {
        self.governor = Some(governor);
        self
    }

    /// Number of worker threads for the enumeration-heavy evaluation
    /// loops. `1` (the default) evaluates exactly as the sequential
    /// engines always have; values above `1` fan hot loops out over a
    /// work-stealing pool. When not set, the [`THREADS_ENV`] environment
    /// variable is consulted.
    pub fn parallelism(mut self, threads: usize) -> Self {
        self.parallelism = Some(threads.max(1));
        self
    }

    /// Durability policy for databases opened through this session:
    /// [`SyncPolicy::Always`] (the default) fsyncs the write-ahead log on
    /// every mutation; [`SyncPolicy::Manual`] defers to explicit
    /// [`Session::sync`] / [`Session::save`] calls.
    pub fn sync_policy(mut self, policy: SyncPolicy) -> Self {
        self.sync_policy = policy;
        self
    }

    /// Build the session.
    pub fn build(self) -> Session {
        let governor = self
            .governor
            .unwrap_or_else(|| Governor::new(self.limits.unwrap_or_else(Limits::unlimited)));
        let pool = ThreadPool::new(self.parallelism.unwrap_or_else(default_parallelism));
        Session {
            governor,
            pool,
            plans: Arc::new(Mutex::new(PlanCache::new(PLAN_CACHE_CAPACITY))),
            sync_policy: self.sync_policy,
        }
    }
}

/// A configured handle over all evaluation engines: one [`Governor`]
/// (shared budget, cancellation) and one [`ThreadPool`] (parallelism),
/// applied uniformly to CALC, Datalog¬ (inflationary, stratified, and
/// simultaneous-fixpoint), and the algebra.
#[derive(Debug, Clone)]
pub struct Session {
    governor: Governor,
    pool: ThreadPool,
    /// LRU cache of compiled plans, keyed on normalized query text plus a
    /// schema fingerprint. Shared by clones of this session (a clone is a
    /// view over the same budget, so sharing its plans is consistent).
    plans: Arc<Mutex<PlanCache<Planned>>>,
    /// Durability policy applied to databases opened via [`Session::open`].
    sync_policy: SyncPolicy,
}

impl Default for Session {
    fn default() -> Self {
        Session::builder().build()
    }
}

impl Session {
    /// Start configuring a session.
    pub fn builder() -> SessionBuilder {
        SessionBuilder::default()
    }

    /// The governor every evaluation in this session draws from.
    pub fn governor(&self) -> &Governor {
        &self.governor
    }

    /// The configured worker count.
    pub fn parallelism(&self) -> usize {
        self.pool.threads()
    }

    // ----- durable storage --------------------------------------------

    /// Open (creating if absent) the durable database at `dir`, running
    /// full crash recovery: load the latest valid snapshot, replay the
    /// write-ahead log, truncate a torn tail, refuse on mid-log
    /// corruption. The session's governor is charged for the replayed
    /// arenas, so recovering a huge store trips the same memory budget as
    /// building it any other way; the session's
    /// [`SessionBuilder::sync_policy`] decides mutation durability.
    pub fn open(&self, dir: &Path) -> Result<Db, Error> {
        let options = DbOptions {
            sync: self.sync_policy,
            governor: Some(self.governor.clone()),
            faults: no_storage::IoFaults::none(),
        };
        Db::open(dir, options).map_err(Error::from)
    }

    /// Checkpoint `db`: fold the write-ahead log into a fresh snapshot
    /// (published with an atomic rename) and reset the log.
    pub fn save(&self, db: &mut Db) -> Result<(), Error> {
        db.save().map_err(Error::from)
    }

    /// Make every mutation of `db` so far durable (meaningful under
    /// [`SyncPolicy::Manual`]; a no-op-cost fsync under
    /// [`SyncPolicy::Always`]).
    pub fn sync(&self, db: &mut Db) -> Result<(), Error> {
        db.sync().map_err(Error::from)
    }

    /// Evaluate a CALC query under the active-domain semantics.
    pub fn eval_calc(&self, instance: &Instance, query: &Query) -> Result<Relation, Error> {
        let order = active_order(instance, query);
        let mut ev = Evaluator::with_governor(instance, order, self.governor.clone())
            .with_pool(self.pool.clone());
        ev.query(query).map_err(Error::from)
    }

    /// Evaluate a CALC query under the restricted-domain semantics of
    /// Theorem 5.1: compute ranges first, then enumerate only them.
    pub fn eval_calc_safe(&self, instance: &Instance, query: &Query) -> Result<Relation, Error> {
        no_core::ranges::safe_eval_pooled(instance, query, &self.governor, &self.pool)
            .map_err(Error::from)
    }

    /// Evaluate a Datalog¬ program with inflationary semantics.
    pub fn eval_datalog(
        &self,
        program: &Program,
        instance: &Instance,
        strategy: Strategy,
    ) -> Result<(Idb, EvalStats), Error> {
        no_datalog::eval_pooled(program, instance, strategy, &self.governor, &self.pool)
            .map_err(Error::from)
    }

    /// Evaluate a Datalog¬ program with stratified semantics.
    pub fn eval_datalog_stratified(
        &self,
        program: &Program,
        instance: &Instance,
    ) -> Result<Idb, Error> {
        no_datalog::eval_stratified_pooled(program, instance, &self.governor, &self.pool)
            .map_err(Error::from)
    }

    /// Evaluate a Datalog¬ program by translating it into one simultaneous
    /// `IFP` fixpoint and running that on the CALC evaluator.
    pub fn eval_datalog_simultaneous(
        &self,
        program: &Program,
        body_var_types: &[(&str, Type)],
        instance: &Instance,
    ) -> Result<Idb, Error> {
        let order = no_object::AtomOrder::new(instance.atoms().into_iter().collect());
        no_datalog::eval_simultaneous_pooled(
            program,
            body_var_types,
            instance,
            order,
            &self.governor,
            &self.pool,
        )
        .map_err(Error::from)
    }

    /// Evaluate an algebra expression.
    pub fn eval_algebra(&self, expr: &Expr, instance: &Instance) -> Result<Relation, Error> {
        no_algebra::eval_pooled(expr, instance, &self.governor, &self.pool).map_err(Error::from)
    }

    /// Statically analyze a CALC query: diagnostics (spans, codes, paper
    /// citations) plus a `⟨i,k⟩` complexity certificate when well-formed.
    ///
    /// Analysis is pure — it never evaluates and spends none of the
    /// session's governor budget, so it is safe to run on untrusted input
    /// before committing fuel to evaluation.
    pub fn analyze(
        &self,
        schema: &no_object::Schema,
        src: &str,
        universe: &mut no_object::Universe,
    ) -> no_analysis::Analysis {
        no_analysis::analyze_calc(schema, src, universe)
    }

    /// Statically analyze a Datalog¬ program (same contract as
    /// [`Session::analyze`]).
    pub fn analyze_datalog(
        &self,
        schema: &no_object::Schema,
        src: &str,
        universe: &mut no_object::Universe,
    ) -> no_analysis::Analysis {
        no_analysis::analyze_datalog(schema, src, universe)
    }

    /// Analyze, then evaluate only if analysis found no errors; a refusal
    /// comes back as [`Error::Diagnostics`] carrying every finding.
    /// Certified range-restricted queries run under the restricted-domain
    /// semantics (Theorem 5.1); others fall back to active-domain
    /// enumeration.
    pub fn eval_calc_checked(
        &self,
        instance: &Instance,
        src: &str,
        universe: &mut no_object::Universe,
    ) -> Result<Relation, Error> {
        let analysis = self.analyze(instance.schema(), src, universe);
        if analysis.has_errors() {
            return Err(no_analysis::DiagnosticsError::new(&analysis).into());
        }
        let query =
            no_core::parse_query(src, universe).expect("analysis passed, so the query parses");
        if analysis.is_rr_safe() {
            self.eval_calc_safe(instance, &query)
        } else {
            self.eval_calc(instance, &query)
        }
    }

    // ----- compile-to-plan entry points -------------------------------

    /// Compile (or fetch from the plan cache) under the session's pass
    /// set: stats come from the instance, limits from the governor.
    fn cached<F>(&self, key: CacheKey, build: F) -> Result<Arc<Planned>, Error>
    where
        F: FnOnce() -> Result<Planned, no_plan::PlanError>,
    {
        if let Some(p) = self.plans.lock().unwrap().get(&key) {
            return Ok(p);
        }
        let planned = Arc::new(build()?);
        self.plans.lock().unwrap().put(key, Arc::clone(&planned));
        Ok(planned)
    }

    fn planner<'s>(&self, instance: &'s Instance) -> Planner<'s> {
        Planner::new(instance.schema())
            .with_instance(instance)
            .with_limits(self.governor.limits().clone())
    }

    /// Plan a CALC query (cached), under either semantics.
    pub fn plan_calc(
        &self,
        instance: &Instance,
        query: &Query,
        mode: CalcMode,
    ) -> Result<Arc<Planned>, Error> {
        let key = no_plan::calc_key(instance.schema(), query, mode);
        self.cached(key, || self.planner(instance).plan_calc(query, mode))
    }

    /// Plan an algebra expression (cached).
    pub fn plan_algebra(&self, instance: &Instance, expr: &Expr) -> Result<Arc<Planned>, Error> {
        let key = no_plan::algebra_key(instance.schema(), expr);
        self.cached(key, || self.planner(instance).plan_algebra(expr))
    }

    /// Plan a Datalog¬ program (cached) under a named strategy.
    pub fn plan_datalog(
        &self,
        instance: &Instance,
        program: &Program,
        mode: DatalogMode,
    ) -> Result<Arc<Planned>, Error> {
        let label = match &mode {
            DatalogMode::Naive => "naive",
            DatalogMode::SemiNaive => "semi-naive",
            DatalogMode::Stratified => "stratified",
            DatalogMode::Simultaneous(_) => "simultaneous-ifp",
        };
        let key = no_plan::datalog_key(instance.schema(), program, label);
        self.cached(key, || self.planner(instance).plan_datalog(program, mode))
    }

    /// [`Session::eval_calc`] through the plan pipeline: compile (or hit
    /// the plan cache), optimize, execute on the same kernels under the
    /// same governor.
    pub fn eval_calc_planned(&self, instance: &Instance, query: &Query) -> Result<Relation, Error> {
        let planned = self.plan_calc(instance, query, CalcMode::ActiveDomain)?;
        let out = planned.execute(instance, &self.governor, &self.pool)?;
        Ok(out.into_relation())
    }

    /// [`Session::eval_calc_safe`] through the plan pipeline.
    pub fn eval_calc_safe_planned(
        &self,
        instance: &Instance,
        query: &Query,
    ) -> Result<Relation, Error> {
        let planned = self.plan_calc(instance, query, CalcMode::Safe)?;
        let out = planned.execute(instance, &self.governor, &self.pool)?;
        Ok(out.into_relation())
    }

    /// [`Session::eval_algebra`] through the plan pipeline (predicate
    /// pushdown runs here).
    pub fn eval_algebra_planned(
        &self,
        expr: &Expr,
        instance: &Instance,
    ) -> Result<Relation, Error> {
        let planned = self.plan_algebra(instance, expr)?;
        let out = planned.execute(instance, &self.governor, &self.pool)?;
        Ok(out.into_relation())
    }

    /// [`Session::eval_datalog`] through the plan pipeline. A `SemiNaive`
    /// request runs the delta-rewritten plan; `Naive` opts out.
    pub fn eval_datalog_planned(
        &self,
        program: &Program,
        instance: &Instance,
        strategy: Strategy,
    ) -> Result<(Idb, EvalStats), Error> {
        let mode = match strategy {
            Strategy::Naive => DatalogMode::Naive,
            Strategy::SemiNaive => DatalogMode::SemiNaive,
        };
        let planned = self.plan_datalog(instance, program, mode)?;
        match planned.execute(instance, &self.governor, &self.pool)? {
            no_plan::Output::Idb(idb, Some(stats)) => Ok((idb, stats)),
            _ => unreachable!("round strategies report stats"),
        }
    }

    /// [`Session::eval_datalog_stratified`] through the plan pipeline.
    pub fn eval_datalog_stratified_planned(
        &self,
        program: &Program,
        instance: &Instance,
    ) -> Result<Idb, Error> {
        let planned = self.plan_datalog(instance, program, DatalogMode::Stratified)?;
        let out = planned.execute(instance, &self.governor, &self.pool)?;
        Ok(out.into_idb())
    }

    /// [`Session::eval_datalog_simultaneous`] through the plan pipeline.
    pub fn eval_datalog_simultaneous_planned(
        &self,
        program: &Program,
        body_var_types: &[(&str, Type)],
        instance: &Instance,
    ) -> Result<Idb, Error> {
        let typed: Vec<(String, Type)> = body_var_types
            .iter()
            .map(|(v, t)| (v.to_string(), t.clone()))
            .collect();
        let planned = self.plan_datalog(instance, program, DatalogMode::Simultaneous(typed))?;
        let out = planned.execute(instance, &self.governor, &self.pool)?;
        Ok(out.into_idb())
    }

    /// Explain a query: the compiled, optimized plan with its pass
    /// provenance, estimates, and early-trip warnings. Rendering is
    /// deterministic — `planned.render_text()` / `planned.render_json()`
    /// are snapshot-tested goldens.
    pub fn explain(
        &self,
        instance: &Instance,
        target: ExplainTarget<'_>,
    ) -> Result<Arc<Planned>, Error> {
        match target {
            ExplainTarget::Calc { query, mode } => self.plan_calc(instance, query, mode),
            ExplainTarget::Algebra(expr) => self.plan_algebra(instance, expr),
            ExplainTarget::Datalog { program, mode } => self.plan_datalog(instance, program, mode),
        }
    }

    /// `(hits, misses)` of the session's plan cache.
    pub fn plan_cache_stats(&self) -> (u64, u64) {
        self.plans.lock().unwrap().stats()
    }

    /// Drop every cached plan (call after schema or bulk data changes when
    /// stale statistics would mis-order new plans; correctness never
    /// depends on this).
    pub fn clear_plan_cache(&self) {
        self.plans.lock().unwrap().clear()
    }
}

/// What [`Session::explain`] should compile.
pub enum ExplainTarget<'a> {
    /// A CALC query under the given semantics.
    Calc {
        /// The query.
        query: &'a Query,
        /// Active-domain or safe evaluation.
        mode: CalcMode,
    },
    /// An algebra expression.
    Algebra(&'a Expr),
    /// A Datalog¬ program under a strategy.
    Datalog {
        /// The program.
        program: &'a Program,
        /// The strategy.
        mode: DatalogMode,
    },
}

#[cfg(test)]
mod tests {
    use super::*;
    use no_algebra::Pred;
    use no_datalog::{DTerm, Literal};
    use no_object::{RelationSchema, Schema, Universe, Value};

    fn graph(edges: &[(&str, &str)]) -> (Universe, Instance) {
        let mut u = Universe::new();
        let schema =
            Schema::from_relations([RelationSchema::new("G", vec![Type::Atom, Type::Atom])]);
        let mut i = Instance::empty(schema);
        for (a, b) in edges {
            let (a, b) = (u.intern(a), u.intern(b));
            i.insert("G", vec![Value::Atom(a), Value::Atom(b)]);
        }
        (u, i)
    }

    fn tc_program() -> Program {
        let mut p = Program::new();
        p.declare("tc", vec![Type::Atom, Type::Atom]);
        p.rule(
            "tc",
            vec![DTerm::var("x"), DTerm::var("y")],
            vec![Literal::Pos(
                "G".into(),
                vec![DTerm::var("x"), DTerm::var("y")],
            )],
        );
        p.rule(
            "tc",
            vec![DTerm::var("x"), DTerm::var("y")],
            vec![
                Literal::Pos("tc".into(), vec![DTerm::var("x"), DTerm::var("z")]),
                Literal::Pos("G".into(), vec![DTerm::var("z"), DTerm::var("y")]),
            ],
        );
        p
    }

    #[test]
    fn session_runs_every_engine() {
        let (mut u, i) = graph(&[("a", "b"), ("b", "c")]);
        for threads in [1, 4] {
            let s = Session::builder().parallelism(threads).build();
            assert_eq!(s.parallelism(), threads);
            let q = no_core::parse_query("{[x:U, y:U] | G(x, y)}", &mut u).unwrap();
            assert_eq!(s.eval_calc(&i, &q).unwrap().len(), 2);
            assert_eq!(s.eval_calc_safe(&i, &q).unwrap().len(), 2);
            let (idb, _) = s
                .eval_datalog(&tc_program(), &i, Strategy::SemiNaive)
                .unwrap();
            assert_eq!(idb["tc"].len(), 3);
            let idb = s.eval_datalog_stratified(&tc_program(), &i).unwrap();
            assert_eq!(idb["tc"].len(), 3);
            let idb = s
                .eval_datalog_simultaneous(&tc_program(), &[("z", Type::Atom)], &i)
                .unwrap();
            assert_eq!(idb["tc"].len(), 3);
            let e = Expr::rel("G").select(Pred::EqCols(1, 1));
            assert_eq!(s.eval_algebra(&e, &i).unwrap().len(), 2);
        }
    }

    #[test]
    fn session_shares_one_budget_across_engines() {
        let (_u, i) = graph(&[("a", "b"), ("b", "c"), ("c", "d")]);
        let s = Session::builder()
            .limits(Limits {
                max_steps: 60,
                ..Limits::unlimited()
            })
            .build();
        // datalog spends most of the fuel…
        let first = s.eval_datalog(&tc_program(), &i, Strategy::SemiNaive);
        // …so by some point an evaluation trips, and the trip is
        // recognisable without matching engine-specific variants
        let mut tripped = first.is_err();
        for _ in 0..20 {
            if tripped {
                break;
            }
            tripped = s
                .eval_algebra(&Expr::rel("G").product(Expr::rel("G")), &i)
                .is_err();
        }
        assert!(tripped, "shared budget never tripped");
        let err = s
            .eval_datalog(&tc_program(), &i, Strategy::SemiNaive)
            .unwrap_err();
        assert!(err.is_resource_trip());
    }

    #[test]
    fn analyze_is_pure_and_spends_no_fuel() {
        let (mut u, i) = graph(&[("a", "b")]);
        // zero fuel: any evaluation attempt would trip immediately
        let s = Session::builder()
            .limits(Limits {
                max_steps: 0,
                ..Limits::unlimited()
            })
            .parallelism(4)
            .build();
        let a = s.analyze(i.schema(), "{[x:U, y:U] | G(x, y)}", &mut u);
        assert!(a.is_rr_safe(), "{:?}", a.diagnostics);
        let d = s.analyze_datalog(i.schema(), "rel tc(U, U).\ntc(x, y) :- G(x, y).", &mut u);
        assert!(d.is_rr_safe(), "{:?}", d.diagnostics);
        assert_eq!(s.governor().steps_spent(), 0, "analysis must not evaluate");
    }

    #[test]
    fn checked_eval_refuses_on_errors_and_runs_when_clean() {
        let (mut u, i) = graph(&[("a", "b"), ("b", "c")]);
        let s = Session::default();
        let out = s
            .eval_calc_checked(&i, "{[x:U, y:U] | G(x, y)}", &mut u)
            .unwrap();
        assert_eq!(out.len(), 2);
        let err = s
            .eval_calc_checked(&i, "{[x:U] | H(x)}", &mut u)
            .unwrap_err();
        match &err {
            Error::Diagnostics(d) => {
                assert_eq!(
                    d.diagnostics[0].code,
                    no_analysis::codes::TY_UNKNOWN_RELATION
                )
            }
            other => panic!("expected Diagnostics, got {other}"),
        }
        assert!(!err.is_resource_trip());
    }

    #[test]
    fn session_opens_and_recovers_durable_databases() {
        let dir = std::env::temp_dir().join(format!("nestdb_session_db_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let s = Session::default();
        let mut db = s.open(&dir).unwrap();
        assert!(db.open_stats().created);
        db.import_text("schema G(U, U).\nG('a', 'b').\nG('b', 'c').\n")
            .unwrap();
        s.save(&mut db).unwrap();
        drop(db);

        // Replay through a session with a tiny memory budget must trip —
        // recovery is charged like any other materialisation.
        let tight = Session::builder()
            .limits(Limits {
                max_memory_bytes: 4,
                ..Limits::unlimited()
            })
            .build();
        let err = tight.open(&dir).unwrap_err();
        assert!(err.is_resource_trip(), "{err}");

        // A roomy session recovers the data and queries it directly.
        let s2 = Session::builder().sync_policy(SyncPolicy::Manual).build();
        let mut db = s2.open(&dir).unwrap();
        assert_eq!(db.epoch(), 1);
        let q = no_core::parse_query("{[x:U, y:U] | G(x, y)}", db.universe_mut()).unwrap();
        let out = s2.eval_calc(db.instance(), &q).unwrap();
        assert_eq!(out.len(), 2);
        s2.sync(&mut db).unwrap();
        drop(db);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn cancellation_reaches_every_engine() {
        let (mut u, i) = graph(&[("a", "b")]);
        let g = Governor::default();
        let s = Session::builder().governor(g.clone()).build();
        g.cancel();
        let q = no_core::parse_query("{[x:U, y:U] | G(x, y)}", &mut u).unwrap();
        assert!(s.eval_calc(&i, &q).unwrap_err().is_resource_trip());
        assert!(s
            .eval_datalog(&tc_program(), &i, Strategy::Naive)
            .unwrap_err()
            .is_resource_trip());
        assert!(s
            .eval_algebra(&Expr::rel("G"), &i)
            .unwrap_err()
            .is_resource_trip());
    }
}
