//! The [`Session`] facade: one handle over every evaluation engine, and
//! the single dispatch point behind the wire protocol.
//!
//! A session bundles a [`Governor`] (budgets, cancellation), a
//! [`ThreadPool`] (parallelism), a plan cache, and a shared [`Store`]
//! (universe + instance + optional durable [`Db`]). Every caller surface —
//! the shell, the `nestdb` CLI subcommands, the TCP server, embeddings —
//! reduces its work to one serializable [`Request`] and calls
//! [`Session::run`]:
//!
//! ```
//! use nestdb::Session;
//! use no_proto::{Lang, Request};
//!
//! let session = Session::builder().parallelism(4).build();
//! let r = session.run(&Request {
//!     op: no_proto::Op::Insert,
//!     text: "schema G(U, U).".into(),
//!     ..Request::default()
//! });
//! assert!(r.ok);
//! session.run(&Request {
//!     op: no_proto::Op::Insert,
//!     text: "G('a', 'b').".into(),
//!     ..Request::default()
//! });
//! let r = session.run(&Request::eval(Lang::Calc, "{[x:U, y:U] | G(x, y)}"));
//! assert_eq!(r.relations[0].rows, vec!["('a', 'b')".to_string()]);
//! ```
//!
//! Requests without a [`Request::limits`] override draw from the *same*
//! session governor allowance — the cross-engine analogue of the rule that
//! all strata of a stratified program share one budget. A request carrying
//! an override runs under a fresh per-request allowance (what the shell
//! does per evaluation and the server does per tenant).
//!
//! The old typed entry points (`eval_calc`, `eval_datalog`, …) remain as
//! thin deprecated shims over the same internals — `tests/api_equivalence.rs`
//! asserts `run` is bit-identical to every one of them.

use crate::error::Error;
use minipool::ThreadPool;
use no_algebra::Expr;
use no_core::eval::{active_order, Evaluator};
use no_core::print::Printer;
use no_core::Query;
use no_datalog::{EvalStats, Idb, Program, Strategy};
use no_ivm::{decode_registry, encode_registry, BaseDelta, IvmError, ViewDelta, ViewRegistry};
use no_object::text::{parse_clause, render_database, Clause};
use no_object::{Governor, Instance, Limits, Relation, Schema, Type, Universe, Value};
use no_plan::{CacheKey, CalcMode, DatalogMode, PlanCache, Planned, Planner};
use no_proto::{
    AnalysisOut, DeltaOut, ExplainOut, Json, Lang, LimitsSpec, Mode, Op, RelationOut, Request,
    Response, Spend, StatsOut, ViewStatsOut,
};
use no_storage::{Db, DbOptions, SyncPolicy};
use std::collections::{BTreeMap, BTreeSet};
use std::path::Path;
use std::sync::{Arc, Mutex, RwLock, RwLockReadGuard, RwLockWriteGuard};
use std::time::{Duration, Instant};

/// How many plans a session keeps in its LRU plan cache.
pub const PLAN_CACHE_CAPACITY: usize = 64;

/// Environment variable consulted for the default worker count when
/// [`SessionBuilder::parallelism`] is not called. Unset, unparsable, or
/// zero values fall back to `1` (sequential).
pub const THREADS_ENV: &str = "NESTDB_THREADS";

fn default_parallelism() -> usize {
    std::env::var(THREADS_ENV)
        .ok()
        .and_then(|s| s.trim().parse::<usize>().ok())
        .filter(|&n| n >= 1)
        .unwrap_or(1)
}

// ---------------------------------------------------------------------------
// Store
// ---------------------------------------------------------------------------

/// The mutable database state behind a session: an interning [`Universe`],
/// an in-memory [`Instance`], and — once attached — a durable [`Db`] that
/// takes over both. Shared behind `Arc<RwLock<_>>` so concurrent readers
/// (server requests) evaluate in parallel while mutations take the write
/// lock.
#[derive(Debug)]
pub struct Store {
    universe: Universe,
    instance: Instance,
    db: Option<Db>,
    views: ViewRegistry,
}

impl Default for Store {
    fn default() -> Self {
        Store::new()
    }
}

impl Store {
    /// An empty in-memory store.
    pub fn new() -> Store {
        Store {
            universe: Universe::new(),
            instance: Instance::empty(Schema::new()),
            db: None,
            views: ViewRegistry::new(),
        }
    }

    /// A store over already-built data.
    pub fn with_data(universe: Universe, instance: Instance) -> Store {
        Store {
            universe,
            instance,
            db: None,
            views: ViewRegistry::new(),
        }
    }

    /// The live universe: the durable store's when one is attached.
    pub fn universe(&self) -> &Universe {
        match &self.db {
            Some(db) => db.universe(),
            None => &self.universe,
        }
    }

    /// Mutable universe access (parsing interns atoms). Sound against a
    /// durable store: the universe is append-only and replay re-interns
    /// atom names from the logged clauses themselves.
    pub fn universe_mut(&mut self) -> &mut Universe {
        match &mut self.db {
            Some(db) => db.universe_mut(),
            None => &mut self.universe,
        }
    }

    /// The live instance: the durable store's when one is attached.
    pub fn instance(&self) -> &Instance {
        match &self.db {
            Some(db) => db.instance(),
            None => &self.instance,
        }
    }

    /// Replace the in-memory instance (ignored while a durable store is
    /// attached — mutate through the log instead).
    pub fn set_instance(&mut self, instance: Instance) {
        if self.db.is_none() {
            self.instance = instance;
        }
    }

    /// The attached durable database, if any.
    pub fn db(&self) -> Option<&Db> {
        self.db.as_ref()
    }

    /// Mutable access to the attached durable database.
    pub fn db_mut(&mut self) -> Option<&mut Db> {
        self.db.as_mut()
    }

    /// The materialized views maintained over this store.
    pub fn views(&self) -> &ViewRegistry {
        &self.views
    }

    /// Mutable access to the view registry (e.g. to drop a view or
    /// install a restored registry).
    pub fn views_mut(&mut self) -> &mut ViewRegistry {
        &mut self.views
    }

    /// Define (or replace) the materialized view `name` from Datalog¬
    /// source and evaluate it against the live instance.
    pub fn materialize_view(
        &mut self,
        name: &str,
        source: &str,
        gov: &Governor,
    ) -> Result<(), IvmError> {
        let program = no_datalog::parse_program(source, self.universe_mut())
            .map_err(|e| IvmError::Parse(e.to_string()))?;
        // the registry is taken out so its mutation can overlap the
        // instance borrow (both live behind `self`)
        let mut views = std::mem::take(&mut self.views);
        let result = views
            .materialize_program(name, source.to_string(), program, self.instance(), gov)
            .map(|_| ());
        self.views = views;
        result
    }

    /// Incrementally maintain every view under `delta`, which describes
    /// mutations **not yet applied** to the live instance. Transactional:
    /// an error leaves every view consistent with the pre-delta state.
    pub fn maintain_views(
        &mut self,
        delta: &BaseDelta,
        gov: &Governor,
    ) -> Result<BTreeMap<String, ViewDelta>, IvmError> {
        let mut views = std::mem::take(&mut self.views);
        let result = views.maintain(self.instance(), delta, gov);
        self.views = views;
        result
    }

    /// Re-materialize every view from scratch against the live instance
    /// (the recovery fallback when incremental state is unusable).
    pub fn recompute_views(&mut self, gov: &Governor) -> Result<(), IvmError> {
        let mut views = std::mem::take(&mut self.views);
        let result = views.recompute_all(self.instance(), gov);
        self.views = views;
        result
    }

    /// Persist the view registry into the attached durable database's
    /// views checkpoint (no-op without one).
    pub fn save_views_checkpoint(&mut self) -> Result<(), no_storage::StorageError> {
        if let Some(db) = &mut self.db {
            let body = encode_registry(&self.views, db.universe());
            db.save_views(&body)?;
        }
        Ok(())
    }

    /// Attach a durable database; it owns the live state from here on.
    pub fn attach(&mut self, db: Db) {
        self.db = Some(db);
    }

    /// Detach the durable database (files stay on disk) and return it.
    pub fn detach(&mut self) -> Option<Db> {
        self.db.take()
    }

    /// Apply one parsed clause — a `schema R(U).` declaration or a fact —
    /// logging it first when a durable store is attached. Returns the
    /// one-line outcome message; errors are message strings too (they
    /// never poison the store).
    pub fn apply_clause(&mut self, clause: Clause) -> Result<String, String> {
        if let Some(db) = &mut self.db {
            return match clause {
                Clause::Schema(rel) => {
                    let name = rel.name.clone();
                    db.declare(rel).map_err(|e| e.to_string())?;
                    Ok(format!("declared {name} (logged)"))
                }
                Clause::Fact(name, row) => {
                    let fresh = db.insert(&name, row).map_err(|e| e.to_string())?;
                    Ok(if fresh {
                        format!("inserted into {name} (logged)")
                    } else {
                        format!("already in {name} (nothing logged)")
                    })
                }
                Clause::Retract(name, row) => {
                    let removed = db.delete(&name, &row).map_err(|e| e.to_string())?;
                    Ok(if removed {
                        format!("deleted from {name} (logged)")
                    } else {
                        format!("not in {name} (nothing logged)")
                    })
                }
            };
        }
        match clause {
            Clause::Schema(rel) => {
                if self.instance.schema().get(&rel.name).is_some() {
                    return Err(format!("relation {:?} is already declared", rel.name));
                }
                let name = rel.name.clone();
                let mut schema = Schema::new();
                for r in self.instance.schema().relations() {
                    schema.add(r.clone());
                }
                schema.add(rel);
                let mut next = Instance::empty(schema);
                for r in self.instance.schema().relations() {
                    next.set_relation(&r.name, self.instance.relation(&r.name).clone());
                }
                self.instance = next;
                Ok(format!("declared {name}"))
            }
            Clause::Fact(name, row) => {
                let (arity, col_types) = match self.instance.schema().get(&name) {
                    Some(r) => (r.arity(), r.column_types.clone()),
                    None => return Err(format!("unknown relation {name:?}")),
                };
                if arity != row.len() {
                    return Err(format!(
                        "relation {name:?} has arity {arity} but the tuple has {} values",
                        row.len()
                    ));
                }
                for (v, t) in row.iter().zip(col_types.iter()) {
                    if !v.has_type(t) {
                        return Err(format!("value is not of type {t} in relation {name:?}"));
                    }
                }
                let fresh = self.instance.insert(&name, row);
                Ok(if fresh {
                    format!("inserted into {name}")
                } else {
                    format!("already in {name}")
                })
            }
            Clause::Retract(name, row) => {
                if self.instance.schema().get(&name).is_none() {
                    return Err(format!("unknown relation {name:?}"));
                }
                let removed = self.instance.delete(&name, &row);
                Ok(if removed {
                    format!("deleted from {name}")
                } else {
                    format!("not in {name}")
                })
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Builder
// ---------------------------------------------------------------------------

/// Configures and builds a [`Session`].
#[derive(Debug, Clone, Default)]
pub struct SessionBuilder {
    limits: Option<Limits>,
    governor: Option<Governor>,
    parallelism: Option<usize>,
    sync_policy: SyncPolicy,
    store: Option<Arc<RwLock<Store>>>,
    plans: Option<Arc<Mutex<PlanCache<Planned>>>>,
}

impl SessionBuilder {
    /// Budget limits for a session-owned governor. Ignored when an
    /// explicit [`SessionBuilder::governor`] is supplied.
    pub fn limits(mut self, limits: Limits) -> Self {
        self.limits = Some(limits);
        self
    }

    /// Share an existing governor — e.g. to run session queries under the
    /// same allowance as surrounding work, or to cancel the session from
    /// another thread via [`Governor::cancel`].
    pub fn governor(mut self, governor: Governor) -> Self {
        self.governor = Some(governor);
        self
    }

    /// Number of worker threads for the enumeration-heavy evaluation
    /// loops. `1` (the default) evaluates exactly as the sequential
    /// engines always have; values above `1` fan hot loops out over a
    /// work-stealing pool. When not set, the [`THREADS_ENV`] environment
    /// variable is consulted.
    pub fn parallelism(mut self, threads: usize) -> Self {
        self.parallelism = Some(threads.max(1));
        self
    }

    /// Durability policy for databases opened through this session:
    /// [`SyncPolicy::Always`] (the default) fsyncs the write-ahead log on
    /// every mutation; [`SyncPolicy::Manual`] defers to explicit
    /// [`Session::sync`] / [`Session::save`] calls.
    pub fn sync_policy(mut self, policy: SyncPolicy) -> Self {
        self.sync_policy = policy;
        self
    }

    /// Share an existing [`Store`] — several sessions (server connections,
    /// a shell plus background work) then see one database.
    pub fn store(mut self, store: Arc<RwLock<Store>>) -> Self {
        self.store = Some(store);
        self
    }

    /// Share an existing plan cache across sessions. Keys carry a schema
    /// fingerprint, so one cache can safely serve many tenants: a plan is
    /// only reused when normalized query text *and* schema both match.
    pub fn plan_cache(mut self, plans: Arc<Mutex<PlanCache<Planned>>>) -> Self {
        self.plans = Some(plans);
        self
    }

    /// Build the session.
    pub fn build(self) -> Session {
        let governor = self
            .governor
            .unwrap_or_else(|| Governor::new(self.limits.unwrap_or_else(Limits::unlimited)));
        let pool = ThreadPool::new(self.parallelism.unwrap_or_else(default_parallelism));
        Session {
            governor,
            pool,
            plans: self
                .plans
                .unwrap_or_else(|| Arc::new(Mutex::new(PlanCache::new(PLAN_CACHE_CAPACITY)))),
            sync_policy: self.sync_policy,
            store: self
                .store
                .unwrap_or_else(|| Arc::new(RwLock::new(Store::new()))),
        }
    }
}

/// A configured handle over all evaluation engines: one [`Governor`]
/// (shared budget, cancellation), one [`ThreadPool`] (parallelism), one
/// plan cache, and one shared [`Store`], applied uniformly to CALC,
/// Datalog¬ (inflationary, stratified, and simultaneous-fixpoint), and
/// the algebra. [`Session::run`] is the protocol entry point.
#[derive(Debug, Clone)]
pub struct Session {
    governor: Governor,
    pool: ThreadPool,
    /// LRU cache of compiled plans, keyed on normalized query text plus a
    /// schema fingerprint. Shared by clones of this session, and across
    /// sessions when built with [`SessionBuilder::plan_cache`].
    plans: Arc<Mutex<PlanCache<Planned>>>,
    /// Durability policy applied to databases opened via [`Session::open`].
    sync_policy: SyncPolicy,
    /// The shared database state [`Session::run`] reads and mutates.
    store: Arc<RwLock<Store>>,
}

impl Default for Session {
    fn default() -> Self {
        Session::builder().build()
    }
}

impl Session {
    /// Start configuring a session.
    pub fn builder() -> SessionBuilder {
        SessionBuilder::default()
    }

    /// The governor every no-override evaluation in this session draws
    /// from.
    pub fn governor(&self) -> &Governor {
        &self.governor
    }

    /// The configured worker count.
    pub fn parallelism(&self) -> usize {
        self.pool.threads()
    }

    /// The shared store handle.
    pub fn store(&self) -> Arc<RwLock<Store>> {
        Arc::clone(&self.store)
    }

    /// The shared plan-cache handle (for wiring several sessions to one
    /// cache; see [`SessionBuilder::plan_cache`]).
    pub fn plan_cache_handle(&self) -> Arc<Mutex<PlanCache<Planned>>> {
        Arc::clone(&self.plans)
    }

    /// This session with a different governor — same pool, plan cache,
    /// store, and sync policy. Construction is a few `Arc` clones.
    pub fn with_governor(&self, governor: Governor) -> Session {
        Session {
            governor,
            pool: self.pool.clone(),
            plans: Arc::clone(&self.plans),
            sync_policy: self.sync_policy,
            store: Arc::clone(&self.store),
        }
    }

    /// This session with a different worker count — same governor, plan
    /// cache, store, and sync policy.
    pub fn with_parallelism(&self, threads: usize) -> Session {
        Session {
            governor: self.governor.clone(),
            pool: ThreadPool::new(threads.max(1)),
            plans: Arc::clone(&self.plans),
            sync_policy: self.sync_policy,
            store: Arc::clone(&self.store),
        }
    }

    fn read_store(&self) -> RwLockReadGuard<'_, Store> {
        // A panicking request must not take the whole service down with a
        // poisoned lock; the store's invariants are per-mutation.
        self.store
            .read()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    fn write_store(&self) -> RwLockWriteGuard<'_, Store> {
        self.store
            .write()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    // ----- the protocol entry point -----------------------------------

    /// Execute one [`Request`] against the session's store and return its
    /// [`Response`]. Never panics on bad input and never returns `Err` —
    /// failures are structured [`no_proto::ErrorOut`] payloads. A request
    /// with [`Request::limits`] runs under a fresh governor built from the
    /// session limits overlaid with the override; otherwise it draws from
    /// the shared session allowance.
    pub fn run(&self, req: &Request) -> Response {
        let governor = match &req.limits {
            Some(spec) => Governor::new(overlay(self.governor.limits(), spec)),
            None => self.governor.clone(),
        };
        self.run_governed(req, governor)
    }

    /// A fresh per-request governor for `req`: the session limits
    /// overlaid with the request's [`Request::limits`] override, counters
    /// at zero. The server builds its governors through this so it can
    /// cancel them on client disconnect and charge their spend to the
    /// tenant; in-process callers can just use [`Session::run`].
    pub fn governor_for(&self, req: &Request) -> Governor {
        let limits = match &req.limits {
            Some(spec) => overlay(self.governor.limits(), spec),
            None => self.governor.limits().clone(),
        };
        Governor::new(limits)
    }

    /// [`Session::run`] under an explicit per-request governor — the
    /// server hook: it builds the governor itself so it can cancel it when
    /// the client disconnects, and charges its spend to the tenant.
    pub fn run_governed(&self, req: &Request, governor: Governor) -> Response {
        let session = self.with_governor(governor);
        let start = Instant::now();
        let steps0 = session.governor.steps_spent();
        let mem0 = session.governor.mem_spent();
        let mut resp = session.dispatch(req);
        resp.spend = Some(Spend {
            steps: session.governor.steps_spent().saturating_sub(steps0),
            mem_bytes: session.governor.mem_spent().saturating_sub(mem0),
            elapsed_us: start.elapsed().as_micros().min(u128::from(u64::MAX)) as u64,
        });
        resp
    }

    fn dispatch(&self, req: &Request) -> Response {
        match req.op {
            Op::Eval => match req.lang {
                Lang::Calc => self.op_eval_calc(req),
                Lang::Datalog => self.op_eval_datalog(req),
                Lang::Algebra => self.op_eval_algebra(req),
            },
            Op::Analyze => self.op_analyze(req),
            Op::Explain => self.op_explain(req),
            Op::Insert => self.op_insert(req),
            Op::Save => self.op_save(req),
            Op::Open => self.op_open(req),
            Op::Stats => self.op_stats(),
            Op::Materialize => self.op_materialize(req),
            Op::Update => self.op_update(req),
            Op::Subscribe => self.op_subscribe(req),
            Op::Unsubscribe => self.op_unsubscribe(req),
        }
    }

    fn op_eval_calc(&self, req: &Request) -> Response {
        // Checked: analyze first, refuse with the findings on any error,
        // then run under the strongest applicable semantics. Both the
        // refusal and the successful run carry the analysis — the
        // certificate travels with the rows.
        let mut checked_analysis = None;
        let safe = match req.mode {
            Mode::Fast => false,
            Mode::Safe => true,
            Mode::Checked => {
                let analysis = {
                    let mut store = self.write_store();
                    let schema = store.instance().schema().clone();
                    no_analysis::analyze_calc(&schema, &req.text, store.universe_mut())
                };
                let out = analysis_out(&analysis, &req.text);
                if analysis.has_errors() {
                    let err: Error = no_analysis::DiagnosticsError::new(&analysis).into();
                    let mut resp = error_response(&err);
                    resp.analysis = Some(out);
                    return resp;
                }
                let safe = analysis.is_rr_safe();
                checked_analysis = Some(out);
                safe
            }
        };
        let query = {
            let mut store = self.write_store();
            match no_core::parse_query(&req.text, store.universe_mut()) {
                Ok(q) => q,
                Err(e) => return Response::error("parse", e.render(&req.text)),
            }
        };
        let store = self.read_store();
        let instance = store.instance();
        let result = match (safe, req.planned) {
            (false, false) => self.calc_active(instance, &query),
            (false, true) => self.calc_active_planned(instance, &query),
            (true, false) => self.calc_safe(instance, &query),
            (true, true) => self.calc_safe_planned(instance, &query),
        };
        match result {
            Ok(rel) => Response {
                ok: true,
                relations: vec![relation_out(store.universe(), "result", &rel)],
                analysis: checked_analysis,
                ..Response::default()
            },
            Err(e) => error_response(&e),
        }
    }

    fn op_eval_datalog(&self, req: &Request) -> Response {
        if req.mode == Mode::Checked {
            let analysis = {
                let mut store = self.write_store();
                let schema = store.instance().schema().clone();
                no_analysis::analyze_datalog(&schema, &req.text, store.universe_mut())
            };
            if analysis.has_errors() {
                let err: Error = no_analysis::DiagnosticsError::new(&analysis).into();
                let mut resp = error_response(&err);
                resp.analysis = Some(analysis_out(&analysis, &req.text));
                return resp;
            }
        }
        let program = {
            let mut store = self.write_store();
            match no_datalog::parse_program(&req.text, store.universe_mut()) {
                Ok(p) => p,
                Err(e) => return Response::error("parse", e.render(&req.text)),
            }
        };
        let store = self.read_store();
        let instance = store.instance();
        let (idb, rounds) = match req.strategy {
            no_proto::Strategy::Naive | no_proto::Strategy::SemiNaive => {
                let strat = if req.strategy == no_proto::Strategy::Naive {
                    Strategy::Naive
                } else {
                    Strategy::SemiNaive
                };
                let result = if req.planned {
                    self.datalog_planned(&program, instance, strat)
                } else {
                    self.datalog(&program, instance, strat)
                };
                match result {
                    Ok((idb, stats)) => (idb, Some(stats.rounds as u64)),
                    Err(e) => return error_response(&e),
                }
            }
            no_proto::Strategy::Stratified => {
                let result = if req.planned {
                    self.datalog_stratified_planned(&program, instance)
                } else {
                    self.datalog_stratified(&program, instance)
                };
                match result {
                    Ok(idb) => (idb, None),
                    Err(e) => return error_response(&e),
                }
            }
            no_proto::Strategy::Simultaneous => {
                let typed = infer_body_var_types(&program, instance.schema());
                let borrowed: Vec<(&str, Type)> =
                    typed.iter().map(|(v, t)| (v.as_str(), t.clone())).collect();
                let result = if req.planned {
                    self.datalog_simultaneous_planned(&program, &borrowed, instance)
                } else {
                    self.datalog_simultaneous(&program, &borrowed, instance)
                };
                match result {
                    Ok(idb) => (idb, None),
                    Err(e) => return error_response(&e),
                }
            }
        };
        Response {
            ok: true,
            relations: idb
                .iter()
                .map(|(name, rel)| relation_out(store.universe(), name, rel))
                .collect(),
            rounds,
            ..Response::default()
        }
    }

    fn op_eval_algebra(&self, req: &Request) -> Response {
        let expr = {
            let mut store = self.write_store();
            match no_algebra::parse_expr(&req.text, store.universe_mut()) {
                Ok(e) => e,
                Err(e) => return Response::error("parse", e.to_string()),
            }
        };
        let store = self.read_store();
        let instance = store.instance();
        let result = if req.planned {
            self.algebra_planned(&expr, instance)
        } else {
            self.algebra(&expr, instance)
        };
        match result {
            Ok(rel) => Response {
                ok: true,
                relations: vec![relation_out(store.universe(), "result", &rel)],
                ..Response::default()
            },
            Err(e) => error_response(&e),
        }
    }

    fn op_analyze(&self, req: &Request) -> Response {
        let analysis = {
            let mut store = self.write_store();
            let schema = store.instance().schema().clone();
            match req.lang {
                Lang::Calc => no_analysis::analyze_calc(&schema, &req.text, store.universe_mut()),
                Lang::Datalog => {
                    no_analysis::analyze_datalog(&schema, &req.text, store.universe_mut())
                }
                Lang::Algebra => {
                    return Response::error(
                        "unsupported",
                        "the algebra has no static analyzer; analyze calc or datalog text",
                    )
                }
            }
        };
        Response {
            ok: true,
            analysis: Some(analysis_out(&analysis, &req.text)),
            ..Response::default()
        }
    }

    fn op_explain(&self, req: &Request) -> Response {
        let planned: Result<Arc<Planned>, Response> = match req.lang {
            Lang::Calc => {
                let query = {
                    let mut store = self.write_store();
                    match no_core::parse_query(&req.text, store.universe_mut()) {
                        Ok(q) => q,
                        Err(e) => return Response::error("parse", e.render(&req.text)),
                    }
                };
                let mode = if req.mode == Mode::Fast {
                    CalcMode::ActiveDomain
                } else {
                    CalcMode::Safe
                };
                let store = self.read_store();
                self.plan_calc(store.instance(), &query, mode)
                    .map_err(|e| error_response(&e))
            }
            Lang::Algebra => {
                let expr = {
                    let mut store = self.write_store();
                    match no_algebra::parse_expr(&req.text, store.universe_mut()) {
                        Ok(e) => e,
                        Err(e) => return Response::error("parse", e.to_string()),
                    }
                };
                let store = self.read_store();
                self.plan_algebra(store.instance(), &expr)
                    .map_err(|e| error_response(&e))
            }
            Lang::Datalog => {
                let program = {
                    let mut store = self.write_store();
                    match no_datalog::parse_program(&req.text, store.universe_mut()) {
                        Ok(p) => p,
                        Err(e) => return Response::error("parse", e.render(&req.text)),
                    }
                };
                let store = self.read_store();
                let mode = match req.strategy {
                    no_proto::Strategy::Naive => DatalogMode::Naive,
                    no_proto::Strategy::SemiNaive => DatalogMode::SemiNaive,
                    no_proto::Strategy::Stratified => DatalogMode::Stratified,
                    no_proto::Strategy::Simultaneous => DatalogMode::Simultaneous(
                        infer_body_var_types(&program, store.instance().schema()),
                    ),
                };
                self.plan_datalog(store.instance(), &program, mode)
                    .map_err(|e| error_response(&e))
            }
        };
        match planned {
            Ok(p) => Response {
                ok: true,
                explain: Some(ExplainOut {
                    text: p.render_text(),
                    json: p.render_json(),
                }),
                ..Response::default()
            },
            Err(resp) => resp,
        }
    }

    fn op_insert(&self, req: &Request) -> Response {
        if req.text.trim().is_empty() {
            return Response::error(
                "protocol",
                "insert needs a clause like schema G(U, U). or G('a', 'b').",
            );
        }
        let mut store = self.write_store();
        let clause = match parse_clause(&req.text, store.universe_mut()) {
            Ok(c) => c,
            Err(e) => return Response::error("parse", e.to_string()),
        };
        // with views live, route the mutation through maintenance first —
        // the engine needs the pre-delta instance
        let mut view_deltas = BTreeMap::new();
        if !store.views().is_empty() {
            let mut delta = BaseDelta::new();
            match &clause {
                Clause::Fact(name, row) => {
                    if let Err(m) = validate_mutation(store.instance(), name, row) {
                        return Response::error("storage", m);
                    }
                    delta.insert(name, row.clone());
                }
                Clause::Retract(name, row) => {
                    if let Err(m) = validate_mutation(store.instance(), name, row) {
                        return Response::error("storage", m);
                    }
                    delta.delete(name, row.clone());
                }
                // a fresh relation is empty: no view can read it yet
                Clause::Schema(_) => {}
            }
            if !delta.is_empty() {
                match store.maintain_views(&delta, &self.governor) {
                    Ok(d) => view_deltas = d,
                    Err(e) => return ivm_error_response(&e),
                }
            }
        }
        match store.apply_clause(clause) {
            Ok(msg) => {
                let mut resp = Response::message(msg);
                resp.deltas = delta_outs(store.universe(), &view_deltas);
                resp
            }
            Err(msg) => {
                if !view_deltas.is_empty() {
                    // views ran ahead of a failed apply; fall back to a
                    // recomputation so they match whatever is live
                    let _ = store.recompute_views(&self.governor);
                }
                Response::error("storage", msg)
            }
        }
    }

    fn op_materialize(&self, req: &Request) -> Response {
        let name = req.view.trim();
        if name.is_empty() {
            return Response::error("protocol", "materialize needs a view name in `view`");
        }
        if req.text.trim().is_empty() {
            return Response::error(
                "protocol",
                "materialize needs the view's datalog source in `text`",
            );
        }
        let mut store = self.write_store();
        if let Err(e) = store.materialize_view(name, &req.text, &self.governor) {
            return ivm_error_response(&e);
        }
        let view = store.views().get(name).expect("just materialized");
        let relations = view
            .relations()
            .map(|(rel, rows)| relation_out(store.universe(), rel, rows))
            .collect();
        let notes = view.strategy_notes().join("; ");
        Response {
            ok: true,
            relations,
            message: Some(format!("materialized view {name} ({notes})")),
            ..Response::default()
        }
    }

    fn op_update(&self, req: &Request) -> Response {
        let mut store = self.write_store();
        let mut clauses = Vec::new();
        {
            let universe = store.universe_mut();
            for line in req.text.lines() {
                let line = line.trim();
                if line.is_empty() {
                    continue;
                }
                match parse_clause(line, universe) {
                    Ok(c) => clauses.push(c),
                    Err(e) => return Response::error("parse", format!("{line:?}: {e}")),
                }
            }
        }
        if clauses.is_empty() {
            return Response::error(
                "protocol",
                "update needs fact or delete clauses, one per line of `text`",
            );
        }
        // validate everything up front so maintenance never runs ahead of
        // a mutation the store would refuse
        let mut delta = BaseDelta::new();
        for c in &clauses {
            match c {
                Clause::Schema(_) => {
                    return Response::error(
                        "protocol",
                        "update takes fact/delete clauses; declare schema through op: insert",
                    )
                }
                Clause::Fact(name, row) => {
                    if let Err(m) = validate_mutation(store.instance(), name, row) {
                        return Response::error("storage", m);
                    }
                    delta.insert(name, row.clone());
                }
                Clause::Retract(name, row) => {
                    if let Err(m) = validate_mutation(store.instance(), name, row) {
                        return Response::error("storage", m);
                    }
                    delta.delete(name, row.clone());
                }
            }
        }
        let view_deltas = match store.maintain_views(&delta, &self.governor) {
            Ok(d) => d,
            Err(e) => return ivm_error_response(&e),
        };
        let mut applied = 0usize;
        for c in clauses {
            match store.apply_clause(c) {
                Ok(_) => applied += 1,
                Err(m) => {
                    // views were maintained for the whole batch; resync
                    // them with what actually landed
                    let _ = store.recompute_views(&self.governor);
                    return Response::error("storage", format!("after {applied} clauses: {m}"));
                }
            }
        }
        let mut resp = Response::message(format!(
            "applied {applied} mutations; {} views maintained",
            store.views().len()
        ));
        resp.deltas = delta_outs(store.universe(), &view_deltas);
        resp
    }

    fn op_subscribe(&self, req: &Request) -> Response {
        let name = req.view.trim();
        if name.is_empty() {
            return Response::error("protocol", "subscribe needs a view name in `view`");
        }
        // the session only validates; the connection-scoped fan-out state
        // lives in the server front
        if self.read_store().views().get(name).is_none() {
            return ivm_error_response(&IvmError::UnknownView(name.to_string()));
        }
        Response::message(format!("subscribed to view {name}"))
    }

    fn op_unsubscribe(&self, req: &Request) -> Response {
        let name = req.view.trim();
        if name.is_empty() {
            return Response::error("protocol", "unsubscribe needs a view name in `view`");
        }
        Response::message(format!("unsubscribed from view {name}"))
    }

    fn op_save(&self, req: &Request) -> Response {
        let path = req.text.trim();
        if path.is_empty() {
            let mut store = self.write_store();
            let saved = match store.db_mut() {
                None => {
                    return Response::error(
                        "storage",
                        "no durable database attached (open a directory first)",
                    )
                }
                Some(db) => db
                    .save()
                    .map(|()| (db.dir().display().to_string(), db.epoch())),
            };
            match saved {
                Ok((dir, epoch)) => {
                    // stamp the maintained views at the fresh epoch so the
                    // next open replays an empty tail over them
                    if let Err(e) = store.save_views_checkpoint() {
                        return error_response(&Error::Storage(e));
                    }
                    let views = store.views().len();
                    Response::message(if views > 0 {
                        format!(
                            "checkpointed {dir} at epoch {epoch} (write-ahead log reset; {views} views checkpointed)"
                        )
                    } else {
                        format!("checkpointed {dir} at epoch {epoch} (write-ahead log reset)")
                    })
                }
                Err(e) => error_response(&Error::Storage(e)),
            }
        } else {
            let store = self.read_store();
            let text = render_database(store.universe(), store.instance());
            match std::fs::write(path, &text) {
                Ok(()) => Response::message(format!(
                    "saved {} tuples to {path}",
                    store.instance().cardinality()
                )),
                Err(e) => Response::error("storage", format!("cannot write {path}: {e}")),
            }
        }
    }

    fn op_open(&self, req: &Request) -> Response {
        let dir = req.text.trim();
        if dir.is_empty() {
            return Response::error("protocol", "open needs a database directory");
        }
        let options = DbOptions {
            sync: self.sync_policy,
            governor: Some(self.governor.clone()),
            faults: no_storage::IoFaults::none(),
        };
        let mut db = match Db::open(Path::new(dir), options) {
            Ok(db) => db,
            Err(e) => return error_response(&Error::Storage(e)),
        };
        let stats = db.open_stats().clone();
        let inst = db.instance();
        let mut msg = if stats.created {
            format!("created durable database at {dir}")
        } else {
            format!(
                "opened {dir}: {} relations, {} tuples, {} atoms (snapshot epoch {}, {} frames replayed)",
                inst.schema().len(),
                inst.cardinality(),
                db.universe().len(),
                stats.snapshot_epoch,
                stats.replayed_frames,
            )
        };
        if stats.truncated_bytes > 0 {
            msg.push_str(&format!(
                "\nrecovered: {} bytes of torn write-ahead-log tail truncated",
                stats.truncated_bytes
            ));
        }
        if stats.stale_wal_discarded {
            msg.push_str("\nrecovered: stale write-ahead log discarded (already in snapshot)");
        }
        let registry = self.restore_views(&mut db, &mut msg);
        let mut store = self.write_store();
        store.attach(db);
        *store.views_mut() = registry;
        Response::message(msg)
    }

    /// Restore maintained views on open: decode the view checkpoint (if
    /// one is current for this epoch) and replay the write-ahead-log tail
    /// it had not yet seen as one maintenance delta. Failures never block
    /// the open — they degrade to "re-materialize by hand" with a note.
    fn restore_views(&self, db: &mut Db, msg: &mut String) -> ViewRegistry {
        let ck = match db.load_views() {
            Ok(Some(ck)) => ck,
            Ok(None) => return ViewRegistry::new(),
            Err(e) => {
                msg.push_str(&format!(
                    "\nview checkpoint corrupt ({e}); views must be re-materialized"
                ));
                return ViewRegistry::new();
            }
        };
        let schema = db.instance().schema().clone();
        let mut reg = match decode_registry(&ck.body, db.universe_mut(), &schema) {
            Ok(reg) => reg,
            Err(e) => {
                msg.push_str(&format!(
                    "\nview checkpoint unreadable ({e}); views must be re-materialized"
                ));
                return ViewRegistry::new();
            }
        };
        // the net change between the checkpoint's WAL position and now
        let mut delta = BaseDelta::new();
        let mut replayed = 0usize;
        for clause in db.epoch_clauses().skip(ck.frames as usize) {
            replayed += 1;
            match clause {
                Clause::Fact(name, row) => delta.insert(name, row.clone()),
                Clause::Retract(name, row) => delta.delete(name, row.clone()),
                // relations declared after the checkpoint are empty then
                // and unreadable by any checkpointed view
                Clause::Schema(_) => {}
            }
        }
        // maintenance needs the pre-delta instance; recovery already
        // replayed the whole log, so un-apply the net tail first
        let mut pre = db.instance().clone();
        for (rel, rows) in &delta.add {
            for row in rows.iter() {
                pre.delete(rel, row);
            }
        }
        for (rel, rows) in &delta.del {
            for row in rows.iter() {
                pre.insert(rel, row.clone());
            }
        }
        match reg.maintain(&pre, &delta, &self.governor) {
            Ok(_) => {
                msg.push_str(&format!(
                    "\nviews restored: {} from checkpoint, {replayed} log clauses replayed",
                    reg.len()
                ));
                reg
            }
            Err(e) => {
                msg.push_str(&format!(
                    "\nview replay failed ({e}); views must be re-materialized"
                ));
                ViewRegistry::new()
            }
        }
    }

    fn op_stats(&self) -> Response {
        let (cache_hits, cache_misses) = self.plan_cache_stats();
        let views = {
            let store = self.read_store();
            let reg = store.views();
            reg.names()
                .filter_map(|name| reg.get(name).map(|v| (name.to_string(), v.stats())))
                .map(|(view, s)| ViewStatsOut {
                    view,
                    maintain_calls: s.maintain_calls,
                    steps_total: s.steps_total,
                    steps_last: s.steps_last,
                })
                .collect()
        };
        Response {
            ok: true,
            stats: Some(StatsOut {
                cache_hits,
                cache_misses,
                views,
                ..StatsOut::default()
            }),
            ..Response::default()
        }
    }

    // ----- durable storage --------------------------------------------

    /// Open (creating if absent) the durable database at `dir`, running
    /// full crash recovery: load the latest valid snapshot, replay the
    /// write-ahead log, truncate a torn tail, refuse on mid-log
    /// corruption. The session's governor is charged for the replayed
    /// arenas, so recovering a huge store trips the same memory budget as
    /// building it any other way; the session's
    /// [`SessionBuilder::sync_policy`] decides mutation durability.
    pub fn open(&self, dir: &Path) -> Result<Db, Error> {
        let options = DbOptions {
            sync: self.sync_policy,
            governor: Some(self.governor.clone()),
            faults: no_storage::IoFaults::none(),
        };
        Db::open(dir, options).map_err(Error::from)
    }

    /// Checkpoint `db`: fold the write-ahead log into a fresh snapshot
    /// (published with an atomic rename) and reset the log.
    pub fn save(&self, db: &mut Db) -> Result<(), Error> {
        db.save().map_err(Error::from)
    }

    /// Make every mutation of `db` so far durable (meaningful under
    /// [`SyncPolicy::Manual`]; a no-op-cost fsync under
    /// [`SyncPolicy::Always`]).
    pub fn sync(&self, db: &mut Db) -> Result<(), Error> {
        db.sync().map_err(Error::from)
    }

    // ----- engine internals (the legacy shims and `run` share these) ---

    fn calc_active(&self, instance: &Instance, query: &Query) -> Result<Relation, Error> {
        let order = active_order(instance, query);
        let mut ev = Evaluator::with_governor(instance, order, self.governor.clone())
            .with_pool(self.pool.clone());
        ev.query(query).map_err(Error::from)
    }

    fn calc_safe(&self, instance: &Instance, query: &Query) -> Result<Relation, Error> {
        no_core::ranges::safe_eval_pooled(instance, query, &self.governor, &self.pool)
            .map_err(Error::from)
    }

    fn datalog(
        &self,
        program: &Program,
        instance: &Instance,
        strategy: Strategy,
    ) -> Result<(Idb, EvalStats), Error> {
        no_datalog::eval_pooled(program, instance, strategy, &self.governor, &self.pool)
            .map_err(Error::from)
    }

    fn datalog_stratified(&self, program: &Program, instance: &Instance) -> Result<Idb, Error> {
        no_datalog::eval_stratified_pooled(program, instance, &self.governor, &self.pool)
            .map_err(Error::from)
    }

    fn datalog_simultaneous(
        &self,
        program: &Program,
        body_var_types: &[(&str, Type)],
        instance: &Instance,
    ) -> Result<Idb, Error> {
        let order = no_object::AtomOrder::new(instance.atoms().into_iter().collect());
        no_datalog::eval_simultaneous_pooled(
            program,
            body_var_types,
            instance,
            order,
            &self.governor,
            &self.pool,
        )
        .map_err(Error::from)
    }

    fn algebra(&self, expr: &Expr, instance: &Instance) -> Result<Relation, Error> {
        no_algebra::eval_pooled(expr, instance, &self.governor, &self.pool).map_err(Error::from)
    }

    fn calc_checked(
        &self,
        instance: &Instance,
        src: &str,
        universe: &mut Universe,
    ) -> Result<Relation, Error> {
        let analysis = no_analysis::analyze_calc(instance.schema(), src, universe);
        if analysis.has_errors() {
            return Err(no_analysis::DiagnosticsError::new(&analysis).into());
        }
        let query =
            no_core::parse_query(src, universe).expect("analysis passed, so the query parses");
        if analysis.is_rr_safe() {
            self.calc_safe(instance, &query)
        } else {
            self.calc_active(instance, &query)
        }
    }

    fn calc_active_planned(&self, instance: &Instance, query: &Query) -> Result<Relation, Error> {
        let planned = self.plan_calc(instance, query, CalcMode::ActiveDomain)?;
        let out = planned.execute(instance, &self.governor, &self.pool)?;
        Ok(out.into_relation())
    }

    fn calc_safe_planned(&self, instance: &Instance, query: &Query) -> Result<Relation, Error> {
        let planned = self.plan_calc(instance, query, CalcMode::Safe)?;
        let out = planned.execute(instance, &self.governor, &self.pool)?;
        Ok(out.into_relation())
    }

    fn algebra_planned(&self, expr: &Expr, instance: &Instance) -> Result<Relation, Error> {
        let planned = self.plan_algebra(instance, expr)?;
        let out = planned.execute(instance, &self.governor, &self.pool)?;
        Ok(out.into_relation())
    }

    fn datalog_planned(
        &self,
        program: &Program,
        instance: &Instance,
        strategy: Strategy,
    ) -> Result<(Idb, EvalStats), Error> {
        let mode = match strategy {
            Strategy::Naive => DatalogMode::Naive,
            Strategy::SemiNaive => DatalogMode::SemiNaive,
        };
        let planned = self.plan_datalog(instance, program, mode)?;
        match planned.execute(instance, &self.governor, &self.pool)? {
            no_plan::Output::Idb(idb, Some(stats)) => Ok((idb, stats)),
            _ => unreachable!("round strategies report stats"),
        }
    }

    fn datalog_stratified_planned(
        &self,
        program: &Program,
        instance: &Instance,
    ) -> Result<Idb, Error> {
        let planned = self.plan_datalog(instance, program, DatalogMode::Stratified)?;
        let out = planned.execute(instance, &self.governor, &self.pool)?;
        Ok(out.into_idb())
    }

    fn datalog_simultaneous_planned(
        &self,
        program: &Program,
        body_var_types: &[(&str, Type)],
        instance: &Instance,
    ) -> Result<Idb, Error> {
        let typed: Vec<(String, Type)> = body_var_types
            .iter()
            .map(|(v, t)| (v.to_string(), t.clone()))
            .collect();
        let planned = self.plan_datalog(instance, program, DatalogMode::Simultaneous(typed))?;
        let out = planned.execute(instance, &self.governor, &self.pool)?;
        Ok(out.into_idb())
    }

    // ----- deprecated typed shims -------------------------------------

    /// Evaluate a CALC query under the active-domain semantics.
    #[deprecated(note = "use Session::run with a Request { mode: Fast }")]
    pub fn eval_calc(&self, instance: &Instance, query: &Query) -> Result<Relation, Error> {
        self.calc_active(instance, query)
    }

    /// Evaluate a CALC query under the restricted-domain semantics of
    /// Theorem 5.1: compute ranges first, then enumerate only them.
    #[deprecated(note = "use Session::run with a Request { mode: Safe }")]
    pub fn eval_calc_safe(&self, instance: &Instance, query: &Query) -> Result<Relation, Error> {
        self.calc_safe(instance, query)
    }

    /// Evaluate a Datalog¬ program with inflationary semantics.
    #[deprecated(note = "use Session::run with a Request { lang: Datalog }")]
    pub fn eval_datalog(
        &self,
        program: &Program,
        instance: &Instance,
        strategy: Strategy,
    ) -> Result<(Idb, EvalStats), Error> {
        self.datalog(program, instance, strategy)
    }

    /// Evaluate a Datalog¬ program with stratified semantics.
    #[deprecated(note = "use Session::run with a Request { strategy: Stratified }")]
    pub fn eval_datalog_stratified(
        &self,
        program: &Program,
        instance: &Instance,
    ) -> Result<Idb, Error> {
        self.datalog_stratified(program, instance)
    }

    /// Evaluate a Datalog¬ program by translating it into one simultaneous
    /// `IFP` fixpoint and running that on the CALC evaluator.
    #[deprecated(note = "use Session::run with a Request { strategy: Simultaneous }")]
    pub fn eval_datalog_simultaneous(
        &self,
        program: &Program,
        body_var_types: &[(&str, Type)],
        instance: &Instance,
    ) -> Result<Idb, Error> {
        self.datalog_simultaneous(program, body_var_types, instance)
    }

    /// Evaluate an algebra expression.
    #[deprecated(note = "use Session::run with a Request { lang: Algebra }")]
    pub fn eval_algebra(&self, expr: &Expr, instance: &Instance) -> Result<Relation, Error> {
        self.algebra(expr, instance)
    }

    /// Statically analyze a CALC query: diagnostics (spans, codes, paper
    /// citations) plus a `⟨i,k⟩` complexity certificate when well-formed.
    ///
    /// Analysis is pure — it never evaluates and spends none of the
    /// session's governor budget, so it is safe to run on untrusted input
    /// before committing fuel to evaluation.
    #[deprecated(note = "use Session::run with a Request { op: Analyze }")]
    pub fn analyze(
        &self,
        schema: &no_object::Schema,
        src: &str,
        universe: &mut no_object::Universe,
    ) -> no_analysis::Analysis {
        no_analysis::analyze_calc(schema, src, universe)
    }

    /// Statically analyze a Datalog¬ program (same contract as
    /// [`Session::analyze`]).
    #[deprecated(note = "use Session::run with a Request { op: Analyze, lang: Datalog }")]
    pub fn analyze_datalog(
        &self,
        schema: &no_object::Schema,
        src: &str,
        universe: &mut no_object::Universe,
    ) -> no_analysis::Analysis {
        no_analysis::analyze_datalog(schema, src, universe)
    }

    /// Analyze, then evaluate only if analysis found no errors; a refusal
    /// comes back as [`Error::Diagnostics`] carrying every finding.
    /// Certified range-restricted queries run under the restricted-domain
    /// semantics (Theorem 5.1); others fall back to active-domain
    /// enumeration.
    #[deprecated(note = "use Session::run with a Request { mode: Checked }")]
    pub fn eval_calc_checked(
        &self,
        instance: &Instance,
        src: &str,
        universe: &mut no_object::Universe,
    ) -> Result<Relation, Error> {
        self.calc_checked(instance, src, universe)
    }

    // ----- compile-to-plan entry points -------------------------------

    /// Compile (or fetch from the plan cache) under the session's pass
    /// set: stats come from the instance, limits from the governor.
    fn cached<F>(&self, key: CacheKey, build: F) -> Result<Arc<Planned>, Error>
    where
        F: FnOnce() -> Result<Planned, no_plan::PlanError>,
    {
        if let Some(p) = self.plans.lock().unwrap().get(&key) {
            return Ok(p);
        }
        let planned = Arc::new(build()?);
        self.plans.lock().unwrap().put(key, Arc::clone(&planned));
        Ok(planned)
    }

    fn planner<'s>(&self, instance: &'s Instance) -> Planner<'s> {
        Planner::new(instance.schema())
            .with_instance(instance)
            .with_limits(self.governor.limits().clone())
    }

    /// Plan a CALC query (cached), under either semantics.
    pub fn plan_calc(
        &self,
        instance: &Instance,
        query: &Query,
        mode: CalcMode,
    ) -> Result<Arc<Planned>, Error> {
        let key = no_plan::calc_key(instance.schema(), query, mode);
        self.cached(key, || self.planner(instance).plan_calc(query, mode))
    }

    /// Plan an algebra expression (cached).
    pub fn plan_algebra(&self, instance: &Instance, expr: &Expr) -> Result<Arc<Planned>, Error> {
        let key = no_plan::algebra_key(instance.schema(), expr);
        self.cached(key, || self.planner(instance).plan_algebra(expr))
    }

    /// Plan a Datalog¬ program (cached) under a named strategy.
    pub fn plan_datalog(
        &self,
        instance: &Instance,
        program: &Program,
        mode: DatalogMode,
    ) -> Result<Arc<Planned>, Error> {
        let label = match &mode {
            DatalogMode::Naive => "naive",
            DatalogMode::SemiNaive => "semi-naive",
            DatalogMode::Stratified => "stratified",
            DatalogMode::Simultaneous(_) => "simultaneous-ifp",
        };
        let key = no_plan::datalog_key(instance.schema(), program, label);
        self.cached(key, || self.planner(instance).plan_datalog(program, mode))
    }

    /// [`Session::eval_calc`] through the plan pipeline: compile (or hit
    /// the plan cache), optimize, execute on the same kernels under the
    /// same governor.
    #[deprecated(note = "use Session::run with a Request { mode: Fast, planned: true }")]
    pub fn eval_calc_planned(&self, instance: &Instance, query: &Query) -> Result<Relation, Error> {
        self.calc_active_planned(instance, query)
    }

    /// [`Session::eval_calc_safe`] through the plan pipeline.
    #[deprecated(note = "use Session::run with a Request { mode: Safe, planned: true }")]
    pub fn eval_calc_safe_planned(
        &self,
        instance: &Instance,
        query: &Query,
    ) -> Result<Relation, Error> {
        self.calc_safe_planned(instance, query)
    }

    /// [`Session::eval_algebra`] through the plan pipeline (predicate
    /// pushdown runs here).
    #[deprecated(note = "use Session::run with a Request { lang: Algebra, planned: true }")]
    pub fn eval_algebra_planned(
        &self,
        expr: &Expr,
        instance: &Instance,
    ) -> Result<Relation, Error> {
        self.algebra_planned(expr, instance)
    }

    /// [`Session::eval_datalog`] through the plan pipeline. A `SemiNaive`
    /// request runs the delta-rewritten plan; `Naive` opts out.
    #[deprecated(note = "use Session::run with a Request { lang: Datalog, planned: true }")]
    pub fn eval_datalog_planned(
        &self,
        program: &Program,
        instance: &Instance,
        strategy: Strategy,
    ) -> Result<(Idb, EvalStats), Error> {
        self.datalog_planned(program, instance, strategy)
    }

    /// [`Session::eval_datalog_stratified`] through the plan pipeline.
    #[deprecated(note = "use Session::run with a Request { strategy: Stratified, planned: true }")]
    pub fn eval_datalog_stratified_planned(
        &self,
        program: &Program,
        instance: &Instance,
    ) -> Result<Idb, Error> {
        self.datalog_stratified_planned(program, instance)
    }

    /// [`Session::eval_datalog_simultaneous`] through the plan pipeline.
    #[deprecated(
        note = "use Session::run with a Request { strategy: Simultaneous, planned: true }"
    )]
    pub fn eval_datalog_simultaneous_planned(
        &self,
        program: &Program,
        body_var_types: &[(&str, Type)],
        instance: &Instance,
    ) -> Result<Idb, Error> {
        self.datalog_simultaneous_planned(program, body_var_types, instance)
    }

    /// Explain a query: the compiled, optimized plan with its pass
    /// provenance, estimates, and early-trip warnings. Rendering is
    /// deterministic — `planned.render_text()` / `planned.render_json()`
    /// are snapshot-tested goldens.
    #[deprecated(note = "use Session::run with a Request { op: Explain }")]
    pub fn explain(
        &self,
        instance: &Instance,
        target: ExplainTarget<'_>,
    ) -> Result<Arc<Planned>, Error> {
        match target {
            ExplainTarget::Calc { query, mode } => self.plan_calc(instance, query, mode),
            ExplainTarget::Algebra(expr) => self.plan_algebra(instance, expr),
            ExplainTarget::Datalog { program, mode } => self.plan_datalog(instance, program, mode),
        }
    }

    /// `(hits, misses)` of the session's plan cache.
    pub fn plan_cache_stats(&self) -> (u64, u64) {
        self.plans.lock().unwrap().stats()
    }

    /// Drop every cached plan (call after schema or bulk data changes when
    /// stale statistics would mis-order new plans; correctness never
    /// depends on this).
    pub fn clear_plan_cache(&self) {
        self.plans.lock().unwrap().clear()
    }
}

/// What [`Session::explain`] should compile.
pub enum ExplainTarget<'a> {
    /// A CALC query under the given semantics.
    Calc {
        /// The query.
        query: &'a Query,
        /// Active-domain or safe evaluation.
        mode: CalcMode,
    },
    /// An algebra expression.
    Algebra(&'a Expr),
    /// A Datalog¬ program under a strategy.
    Datalog {
        /// The program.
        program: &'a Program,
        /// The strategy.
        mode: DatalogMode,
    },
}

// ---------------------------------------------------------------------------
// Response assembly helpers
// ---------------------------------------------------------------------------

/// Overlay a wire-level [`LimitsSpec`] onto base limits. `deadline_ms: 0`
/// clears the deadline (matches the shell's `:deadline 0`).
fn overlay(base: &Limits, spec: &LimitsSpec) -> Limits {
    Limits {
        max_steps: spec.max_steps.unwrap_or(base.max_steps),
        max_range: spec.max_range.unwrap_or(base.max_range),
        max_fixpoint_iters: spec.max_fixpoint_iters.unwrap_or(base.max_fixpoint_iters),
        max_memory_bytes: spec.max_memory_bytes.unwrap_or(base.max_memory_bytes),
        deadline: match spec.deadline_ms {
            Some(0) => None,
            Some(ms) => Some(Duration::from_millis(ms)),
            None => base.deadline,
        },
    }
}

fn error_response(e: &Error) -> Response {
    let trip = e.is_resource_trip();
    let kind = if trip {
        "resource"
    } else {
        match e {
            Error::Diagnostics(_) => "diagnostics",
            Error::Storage(_) => "storage",
            _ => "eval",
        }
    };
    let mut resp = Response::error(kind, e.to_string());
    if let Some(err) = resp.error.as_mut() {
        err.resource_trip = trip;
    }
    resp
}

fn ivm_error_response(e: &IvmError) -> Response {
    let (kind, trip) = match e {
        IvmError::Parse(_) => ("parse", false),
        IvmError::Plan(_) => ("eval", false),
        IvmError::Resource(_) => ("resource", true),
        IvmError::UnknownView(_) => ("protocol", false),
        IvmError::Checkpoint(_) => ("storage", false),
    };
    let mut resp = Response::error(kind, e.to_string());
    if let Some(err) = resp.error.as_mut() {
        err.resource_trip = trip;
    }
    resp
}

/// Check a fact/delete mutation against the schema without applying it,
/// so a batch can be validated up front and applied all-or-nothing.
fn validate_mutation(instance: &Instance, name: &str, row: &[Value]) -> Result<(), String> {
    let rel = match instance.schema().get(name) {
        Some(r) => r,
        None => return Err(format!("unknown relation {name:?}")),
    };
    if rel.arity() != row.len() {
        return Err(format!(
            "relation {name:?} has arity {} but the tuple has {} values",
            rel.arity(),
            row.len()
        ));
    }
    for (v, t) in row.iter().zip(rel.column_types.iter()) {
        if !v.has_type(t) {
            return Err(format!("value is not of type {t} in relation {name:?}"));
        }
    }
    Ok(())
}

/// Render per-view maintenance deltas for the wire, skipping views the
/// mutation did not touch.
fn delta_outs(universe: &Universe, deltas: &BTreeMap<String, ViewDelta>) -> Vec<DeltaOut> {
    deltas
        .iter()
        .filter(|(_, d)| !d.is_empty())
        .map(|(view, d)| DeltaOut {
            view: view.clone(),
            added: d
                .add
                .iter()
                .filter(|(_, rows)| !rows.is_empty())
                .map(|(rel, rows)| relation_out(universe, rel, rows))
                .collect(),
            removed: d
                .del
                .iter()
                .filter(|(_, rows)| !rows.is_empty())
                .map(|(rel, rows)| relation_out(universe, rel, rows))
                .collect(),
        })
        .collect()
}

fn analysis_out(analysis: &no_analysis::Analysis, src: &str) -> AnalysisOut {
    let errors = analysis
        .diagnostics
        .iter()
        .filter(|d| d.severity == no_analysis::Severity::Error)
        .count() as u64;
    AnalysisOut {
        text: analysis.render(src),
        json: analysis.to_json(),
        errors,
        warnings: analysis.diagnostics.len() as u64 - errors,
        certified: analysis.certificate.is_some(),
    }
}

fn value_json(universe: &Universe, v: &Value) -> Json {
    match v {
        Value::Atom(a) => Json::Str(universe.name(*a).to_string()),
        Value::Tuple(vs) => Json::Arr(vs.iter().map(|v| value_json(universe, v)).collect()),
        // Canonical set order is the element order SetValue maintains.
        Value::Set(s) => Json::Arr(s.iter().map(|v| value_json(universe, v)).collect()),
    }
}

fn relation_out(universe: &Universe, name: &str, rel: &Relation) -> RelationOut {
    let printer = Printer::with_universe(universe);
    let sorted = rel.sorted_rows();
    let rows: Vec<String> = sorted
        .iter()
        .map(|row| {
            let cells: Vec<String> = row.iter().map(|v| printer.value(v)).collect();
            format!("({})", cells.join(", "))
        })
        .collect();
    let rows_json = Json::Arr(
        sorted
            .iter()
            .map(|row| Json::Arr(row.iter().map(|v| value_json(universe, v)).collect()))
            .collect(),
    )
    .render();
    RelationOut {
        name: name.to_string(),
        rows,
        rows_json,
    }
}

/// Infer the `body_var_types` argument of the simultaneous-IFP translation
/// from the program itself: every variable that occurs in some rule body
/// but not in that rule's head, typed by the column it occurs at (IDB
/// declarations first, then the EDB schema). First occurrence wins on the
/// rare cross-rule name collision.
fn infer_body_var_types(program: &Program, schema: &Schema) -> Vec<(String, Type)> {
    let mut out: BTreeMap<String, Type> = BTreeMap::new();
    for rule in &program.rules {
        let head_vars: BTreeSet<&str> = rule
            .head_args
            .iter()
            .filter_map(|t| match t {
                no_datalog::DTerm::Var(v) => Some(v.as_str()),
                no_datalog::DTerm::Const(_) => None,
            })
            .collect();
        for lit in &rule.body {
            let (rel, terms) = match lit {
                no_datalog::Literal::Pos(rel, terms) | no_datalog::Literal::Neg(rel, terms) => {
                    (rel, terms)
                }
                _ => continue,
            };
            let cols: Option<Vec<Type>> = program
                .idb
                .get(rel)
                .cloned()
                .or_else(|| schema.get(rel).map(|r| r.column_types.clone()));
            let Some(cols) = cols else { continue };
            for (term, ty) in terms.iter().zip(cols) {
                if let no_datalog::DTerm::Var(v) = term {
                    if !head_vars.contains(v.as_str()) {
                        out.entry(v.clone()).or_insert(ty);
                    }
                }
            }
        }
    }
    out.into_iter().collect()
}

#[cfg(test)]
#[allow(deprecated)] // the legacy shims are exercised on purpose here
mod tests {
    use super::*;
    use no_algebra::Pred;
    use no_datalog::{DTerm, Literal};
    use no_object::{RelationSchema, Schema, Universe, Value};

    fn graph(edges: &[(&str, &str)]) -> (Universe, Instance) {
        let mut u = Universe::new();
        let schema =
            Schema::from_relations([RelationSchema::new("G", vec![Type::Atom, Type::Atom])]);
        let mut i = Instance::empty(schema);
        for (a, b) in edges {
            let (a, b) = (u.intern(a), u.intern(b));
            i.insert("G", vec![Value::Atom(a), Value::Atom(b)]);
        }
        (u, i)
    }

    fn graph_session(edges: &[(&str, &str)]) -> Session {
        let (u, i) = graph(edges);
        Session::builder()
            .store(Arc::new(RwLock::new(Store::with_data(u, i))))
            .build()
    }

    fn tc_program() -> Program {
        let mut p = Program::new();
        p.declare("tc", vec![Type::Atom, Type::Atom]);
        p.rule(
            "tc",
            vec![DTerm::var("x"), DTerm::var("y")],
            vec![Literal::Pos(
                "G".into(),
                vec![DTerm::var("x"), DTerm::var("y")],
            )],
        );
        p.rule(
            "tc",
            vec![DTerm::var("x"), DTerm::var("y")],
            vec![
                Literal::Pos("tc".into(), vec![DTerm::var("x"), DTerm::var("z")]),
                Literal::Pos("G".into(), vec![DTerm::var("z"), DTerm::var("y")]),
            ],
        );
        p
    }

    const TC_SRC: &str = "rel tc(U, U).\ntc(x, y) :- G(x, y).\ntc(x, y) :- tc(x, z), G(z, y).";

    #[test]
    fn session_runs_every_engine() {
        let (mut u, i) = graph(&[("a", "b"), ("b", "c")]);
        for threads in [1, 4] {
            let s = Session::builder().parallelism(threads).build();
            assert_eq!(s.parallelism(), threads);
            let q = no_core::parse_query("{[x:U, y:U] | G(x, y)}", &mut u).unwrap();
            assert_eq!(s.eval_calc(&i, &q).unwrap().len(), 2);
            assert_eq!(s.eval_calc_safe(&i, &q).unwrap().len(), 2);
            let (idb, _) = s
                .eval_datalog(&tc_program(), &i, Strategy::SemiNaive)
                .unwrap();
            assert_eq!(idb["tc"].len(), 3);
            let idb = s.eval_datalog_stratified(&tc_program(), &i).unwrap();
            assert_eq!(idb["tc"].len(), 3);
            let idb = s
                .eval_datalog_simultaneous(&tc_program(), &[("z", Type::Atom)], &i)
                .unwrap();
            assert_eq!(idb["tc"].len(), 3);
            let e = Expr::rel("G").select(Pred::EqCols(1, 1));
            assert_eq!(s.eval_algebra(&e, &i).unwrap().len(), 2);
        }
    }

    #[test]
    fn session_shares_one_budget_across_engines() {
        let (_u, i) = graph(&[("a", "b"), ("b", "c"), ("c", "d")]);
        let s = Session::builder()
            .limits(Limits {
                max_steps: 60,
                ..Limits::unlimited()
            })
            .build();
        // datalog spends most of the fuel…
        let first = s.eval_datalog(&tc_program(), &i, Strategy::SemiNaive);
        // …so by some point an evaluation trips, and the trip is
        // recognisable without matching engine-specific variants
        let mut tripped = first.is_err();
        for _ in 0..20 {
            if tripped {
                break;
            }
            tripped = s
                .eval_algebra(&Expr::rel("G").product(Expr::rel("G")), &i)
                .is_err();
        }
        assert!(tripped, "shared budget never tripped");
        let err = s
            .eval_datalog(&tc_program(), &i, Strategy::SemiNaive)
            .unwrap_err();
        assert!(err.is_resource_trip());
    }

    #[test]
    fn analyze_is_pure_and_spends_no_fuel() {
        let (mut u, i) = graph(&[("a", "b")]);
        // zero fuel: any evaluation attempt would trip immediately
        let s = Session::builder()
            .limits(Limits {
                max_steps: 0,
                ..Limits::unlimited()
            })
            .parallelism(4)
            .build();
        let a = s.analyze(i.schema(), "{[x:U, y:U] | G(x, y)}", &mut u);
        assert!(a.is_rr_safe(), "{:?}", a.diagnostics);
        let d = s.analyze_datalog(i.schema(), "rel tc(U, U).\ntc(x, y) :- G(x, y).", &mut u);
        assert!(d.is_rr_safe(), "{:?}", d.diagnostics);
        assert_eq!(s.governor().steps_spent(), 0, "analysis must not evaluate");
    }

    #[test]
    fn checked_eval_refuses_on_errors_and_runs_when_clean() {
        let (mut u, i) = graph(&[("a", "b"), ("b", "c")]);
        let s = Session::default();
        let out = s
            .eval_calc_checked(&i, "{[x:U, y:U] | G(x, y)}", &mut u)
            .unwrap();
        assert_eq!(out.len(), 2);
        let err = s
            .eval_calc_checked(&i, "{[x:U] | H(x)}", &mut u)
            .unwrap_err();
        match &err {
            Error::Diagnostics(d) => {
                assert_eq!(
                    d.diagnostics[0].code,
                    no_analysis::codes::TY_UNKNOWN_RELATION
                )
            }
            other => panic!("expected Diagnostics, got {other}"),
        }
        assert!(!err.is_resource_trip());
    }

    #[test]
    fn session_opens_and_recovers_durable_databases() {
        let dir = std::env::temp_dir().join(format!("nestdb_session_db_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let s = Session::default();
        let mut db = s.open(&dir).unwrap();
        assert!(db.open_stats().created);
        db.import_text("schema G(U, U).\nG('a', 'b').\nG('b', 'c').\n")
            .unwrap();
        s.save(&mut db).unwrap();
        drop(db);

        // Replay through a session with a tiny memory budget must trip —
        // recovery is charged like any other materialisation.
        let tight = Session::builder()
            .limits(Limits {
                max_memory_bytes: 4,
                ..Limits::unlimited()
            })
            .build();
        let err = tight.open(&dir).unwrap_err();
        assert!(err.is_resource_trip(), "{err}");

        // A roomy session recovers the data and queries it directly.
        let s2 = Session::builder().sync_policy(SyncPolicy::Manual).build();
        let mut db = s2.open(&dir).unwrap();
        assert_eq!(db.epoch(), 1);
        let q = no_core::parse_query("{[x:U, y:U] | G(x, y)}", db.universe_mut()).unwrap();
        let out = s2.eval_calc(db.instance(), &q).unwrap();
        assert_eq!(out.len(), 2);
        s2.sync(&mut db).unwrap();
        drop(db);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn cancellation_reaches_every_engine() {
        let (mut u, i) = graph(&[("a", "b")]);
        let g = Governor::default();
        let s = Session::builder().governor(g.clone()).build();
        g.cancel();
        let q = no_core::parse_query("{[x:U, y:U] | G(x, y)}", &mut u).unwrap();
        assert!(s.eval_calc(&i, &q).unwrap_err().is_resource_trip());
        assert!(s
            .eval_datalog(&tc_program(), &i, Strategy::Naive)
            .unwrap_err()
            .is_resource_trip());
        assert!(s
            .eval_algebra(&Expr::rel("G"), &i)
            .unwrap_err()
            .is_resource_trip());
    }

    // ----- Session::run ------------------------------------------------

    #[test]
    fn run_evaluates_calc_in_every_mode() {
        let s = graph_session(&[("a", "b"), ("b", "c")]);
        for mode in [Mode::Fast, Mode::Safe, Mode::Checked] {
            for planned in [false, true] {
                let r = s.run(&Request {
                    mode,
                    planned,
                    text: "{[x:U, y:U] | G(x, y)}".into(),
                    ..Request::default()
                });
                assert!(r.ok, "{mode:?}/{planned}: {:?}", r.error);
                assert_eq!(r.relations.len(), 1);
                assert_eq!(r.relations[0].name, "result");
                assert_eq!(
                    r.relations[0].rows,
                    vec!["('a', 'b')".to_string(), "('b', 'c')".to_string()]
                );
                assert_eq!(r.relations[0].rows_json, r#"[["a","b"],["b","c"]]"#);
                assert!(r.spend.is_some());
            }
        }
    }

    #[test]
    fn run_evaluates_datalog_under_every_strategy() {
        let s = graph_session(&[("a", "b"), ("b", "c")]);
        for strategy in [
            no_proto::Strategy::Naive,
            no_proto::Strategy::SemiNaive,
            no_proto::Strategy::Stratified,
            no_proto::Strategy::Simultaneous,
        ] {
            for planned in [false, true] {
                let r = s.run(&Request {
                    lang: Lang::Datalog,
                    strategy,
                    planned,
                    text: TC_SRC.into(),
                    ..Request::default()
                });
                assert!(r.ok, "{strategy:?}/{planned}: {:?}", r.error);
                let tc = r.relations.iter().find(|r| r.name == "tc").unwrap();
                assert_eq!(tc.rows.len(), 3, "{strategy:?}");
                if matches!(
                    strategy,
                    no_proto::Strategy::Naive | no_proto::Strategy::SemiNaive
                ) {
                    assert!(r.rounds.is_some(), "{strategy:?} reports rounds");
                }
            }
        }
    }

    #[test]
    fn run_evaluates_algebra_text() {
        let s = graph_session(&[("a", "b"), ("b", "a")]);
        for planned in [false, true] {
            let r = s.run(&Request {
                lang: Lang::Algebra,
                planned,
                text: "select[eq(2, 3)]((G x G))".into(),
                ..Request::default()
            });
            assert!(r.ok, "{:?}", r.error);
            assert_eq!(r.relations[0].rows.len(), 2);
        }
    }

    #[test]
    fn run_checked_refusal_carries_diagnostics() {
        let s = graph_session(&[("a", "b")]);
        let r = s.run(&Request {
            mode: Mode::Checked,
            text: "{[x:U] | H(x)}".into(),
            ..Request::default()
        });
        assert!(!r.ok);
        let e = r.error.as_ref().unwrap();
        assert_eq!(e.kind, "diagnostics");
        assert!(!e.resource_trip);
        let a = r.analysis.as_ref().unwrap();
        assert!(a.errors >= 1);
        assert!(!a.certified);
        assert!(a.text.contains("TY001"), "{}", a.text);
    }

    #[test]
    fn run_parse_errors_are_structured() {
        let s = graph_session(&[("a", "b")]);
        for (lang, text) in [
            (Lang::Calc, "{[x:U] | G(x,, x)}"),
            (Lang::Datalog, "rel tc(U, U).\ntc(x :- G(x, y)."),
            (Lang::Algebra, "project[](G)"),
        ] {
            let r = s.run(&Request::eval(lang, text));
            assert!(!r.ok, "{lang:?}");
            assert_eq!(r.error.as_ref().unwrap().kind, "parse", "{lang:?}");
        }
    }

    #[test]
    fn run_limits_override_gets_a_fresh_allowance_per_request() {
        let s = graph_session(&[("a", "b"), ("b", "c")]);
        let tight = Request {
            text: "{[x:U, y:U] | G(x, y)}".into(),
            limits: Some(LimitsSpec {
                max_steps: Some(0),
                ..LimitsSpec::default()
            }),
            ..Request::default()
        };
        let r = s.run(&tight);
        assert!(!r.ok);
        let e = r.error.as_ref().unwrap();
        assert_eq!(e.kind, "resource");
        assert!(e.resource_trip);
        // The *session* allowance was untouched: the same request without
        // an override still succeeds.
        let r = s.run(&Request::eval(Lang::Calc, "{[x:U, y:U] | G(x, y)}"));
        assert!(r.ok, "{:?}", r.error);
    }

    #[test]
    fn run_analyze_and_explain() {
        let s = graph_session(&[("a", "b")]);
        let r = s.run(&Request {
            op: Op::Analyze,
            text: "{[x:U, y:U] | G(x, y)}".into(),
            ..Request::default()
        });
        assert!(r.ok);
        let a = r.analysis.as_ref().unwrap();
        assert!(a.certified);
        assert_eq!((a.errors, a.warnings), (0, 0));
        assert!(a.json.contains("\"status\": \"ok\""), "{}", a.json);

        let r = s.run(&Request {
            op: Op::Explain,
            text: "{[x:U, y:U] | G(x, y)}".into(),
            ..Request::default()
        });
        assert!(r.ok);
        let e = r.explain.as_ref().unwrap();
        assert!(e.text.contains("plan: calc (safe)"), "{}", e.text);
        assert!(e.json.contains("\"mode\""), "{}", e.json);

        let r = s.run(&Request {
            op: Op::Analyze,
            lang: Lang::Algebra,
            text: "G".into(),
            ..Request::default()
        });
        assert!(!r.ok);
        assert_eq!(r.error.as_ref().unwrap().kind, "unsupported");
    }

    #[test]
    fn run_insert_then_eval_round_trip() {
        let s = Session::default();
        for clause in ["schema G(U, U).", "G('a', 'b').", "G('b', 'c')."] {
            let r = s.run(&Request {
                op: Op::Insert,
                text: clause.into(),
                ..Request::default()
            });
            assert!(r.ok, "{clause}: {:?}", r.error);
        }
        // duplicate insert reports, does not fail
        let r = s.run(&Request {
            op: Op::Insert,
            text: "G('a', 'b').".into(),
            ..Request::default()
        });
        assert!(r.ok);
        assert!(r.message.as_ref().unwrap().contains("already"));
        // bad inserts are structured errors
        for bad in ["H('a').", "G('a').", "schema G(U)."] {
            let r = s.run(&Request {
                op: Op::Insert,
                text: bad.into(),
                ..Request::default()
            });
            assert!(!r.ok, "{bad}");
        }
        let r = s.run(&Request::eval(Lang::Calc, "{[x:U, y:U] | G(x, y)}"));
        assert_eq!(r.relations[0].rows.len(), 2);
    }

    #[test]
    fn run_open_insert_save_against_durable_store() {
        let dir = std::env::temp_dir().join(format!("nestdb_run_db_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let s = Session::default();
        let r = s.run(&Request {
            op: Op::Open,
            text: dir.display().to_string(),
            ..Request::default()
        });
        assert!(r.ok, "{:?}", r.error);
        assert!(r.message.as_ref().unwrap().contains("created"));
        for clause in ["schema G(U, U).", "G('a', 'b')."] {
            let r = s.run(&Request {
                op: Op::Insert,
                text: clause.into(),
                ..Request::default()
            });
            assert!(r.ok, "{clause}: {:?}", r.error);
            assert!(r.message.as_ref().unwrap().contains("logged"));
        }
        let r = s.run(&Request {
            op: Op::Save,
            ..Request::default()
        });
        assert!(r.ok, "{:?}", r.error);
        assert!(r.message.as_ref().unwrap().contains("epoch 1"));
        // reopen in a second session: the data survived
        let s2 = Session::default();
        let r = s2.run(&Request {
            op: Op::Open,
            text: dir.display().to_string(),
            ..Request::default()
        });
        assert!(r.ok, "{:?}", r.error);
        assert!(r
            .message
            .as_ref()
            .unwrap()
            .contains("1 relations, 1 tuples"));
        let r = s2.run(&Request::eval(Lang::Calc, "{[x:U, y:U] | G(x, y)}"));
        assert_eq!(r.relations[0].rows, vec!["('a', 'b')".to_string()]);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn run_save_to_text_file() {
        let s = graph_session(&[("a", "b")]);
        let path = std::env::temp_dir().join(format!("nestdb_run_save_{}.no", std::process::id()));
        let r = s.run(&Request {
            op: Op::Save,
            text: path.display().to_string(),
            ..Request::default()
        });
        assert!(r.ok, "{:?}", r.error);
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.contains("G('a', 'b')."), "{text}");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn run_stats_reports_plan_cache_counters() {
        let s = graph_session(&[("a", "b")]);
        let q = Request {
            planned: true,
            text: "{[x:U, y:U] | G(x, y)}".into(),
            ..Request::default()
        };
        s.run(&q);
        s.run(&q);
        let r = s.run(&Request {
            op: Op::Stats,
            ..Request::default()
        });
        let stats = r.stats.as_ref().unwrap();
        assert!(stats.cache_hits >= 1, "second planned run hits the cache");
        assert!(stats.cache_misses >= 1);
    }

    #[test]
    fn run_responses_serialize_to_single_lines() {
        let s = graph_session(&[("a", "b")]);
        for req in [
            Request::eval(Lang::Calc, "{[x:U, y:U] | G(x, y)}"),
            Request {
                op: Op::Analyze,
                text: "{[x:U] | H(x)}".into(),
                ..Request::default()
            },
            Request {
                op: Op::Explain,
                text: "{[x:U, y:U] | G(x, y)}".into(),
                ..Request::default()
            },
            Request::eval(Lang::Calc, "{[x:U] | G(x,, x)}"),
        ] {
            let resp = s.run(&req);
            let line = resp.to_json();
            assert!(!line.contains('\n'), "{line}");
            let back = Response::from_json(&line).unwrap();
            assert_eq!(back.to_json(), line);
        }
    }

    #[test]
    fn infer_body_var_types_finds_body_only_vars() {
        let (_u, i) = graph(&[("a", "b")]);
        let typed = infer_body_var_types(&tc_program(), i.schema());
        assert_eq!(typed, vec![("z".to_string(), Type::Atom)]);
    }

    #[test]
    fn sessions_share_stores_and_plan_caches() {
        let s = graph_session(&[("a", "b")]);
        let peer = Session::builder()
            .store(s.store())
            .plan_cache(s.plan_cache_handle())
            .build();
        let q = Request {
            planned: true,
            text: "{[x:U, y:U] | G(x, y)}".into(),
            ..Request::default()
        };
        assert!(s.run(&q).ok);
        let (_, misses_before) = peer.plan_cache_stats();
        assert!(peer.run(&q).ok);
        let (hits, misses) = peer.plan_cache_stats();
        assert_eq!(misses, misses_before, "peer reused the shared plan");
        assert!(hits >= 1);
    }

    #[test]
    fn run_materialize_update_round_trip() {
        let s = graph_session(&[("a", "b"), ("b", "c")]);
        let r = s.run(&Request {
            op: Op::Materialize,
            view: "paths".into(),
            text: TC_SRC.into(),
            ..Request::default()
        });
        assert!(r.ok, "{:?}", r.error);
        assert!(r.message.as_ref().unwrap().contains("materialized"));
        let tc = r.relations.iter().find(|r| r.name == "tc").unwrap();
        assert_eq!(tc.rows.len(), 3);

        // a batch update maintains the view and reports its delta
        let r = s.run(&Request {
            op: Op::Update,
            text: "G('c', 'd').".into(),
            ..Request::default()
        });
        assert!(r.ok, "{:?}", r.error);
        assert_eq!(r.deltas.len(), 1);
        assert_eq!(r.deltas[0].view, "paths");
        let added = &r.deltas[0].added[0];
        assert_eq!(added.name, "tc");
        assert_eq!(added.rows.len(), 3, "(c,d) (b,d) (a,d)");
        assert!(r.deltas[0].removed.is_empty());

        // a single Op::Insert mutation maintains too
        let r = s.run(&Request {
            op: Op::Insert,
            text: "delete G('c', 'd').".into(),
            ..Request::default()
        });
        assert!(r.ok, "{:?}", r.error);
        assert_eq!(r.deltas[0].removed[0].rows.len(), 3);

        // stats expose per-view maintenance accounting
        let r = s.run(&Request {
            op: Op::Stats,
            ..Request::default()
        });
        let views = &r.stats.as_ref().unwrap().views;
        assert_eq!(views.len(), 1);
        assert_eq!(views[0].view, "paths");
        assert_eq!(views[0].maintain_calls, 2);
        assert!(views[0].steps_total > 0);

        // subscribe validates the view name
        let r = s.run(&Request {
            op: Op::Subscribe,
            view: "paths".into(),
            ..Request::default()
        });
        assert!(r.ok);
        let r = s.run(&Request {
            op: Op::Subscribe,
            view: "nope".into(),
            ..Request::default()
        });
        assert!(!r.ok);
        assert_eq!(r.error.as_ref().unwrap().kind, "protocol");
    }

    #[test]
    fn run_update_rejects_bad_batches_atomically() {
        let s = graph_session(&[("a", "b"), ("b", "c")]);
        assert!(
            s.run(&Request {
                op: Op::Materialize,
                view: "paths".into(),
                text: TC_SRC.into(),
                ..Request::default()
            })
            .ok
        );
        // one bad clause anywhere rejects the whole batch up front
        let r = s.run(&Request {
            op: Op::Update,
            text: "G('c', 'd').\nH('x', 'y').".into(),
            ..Request::default()
        });
        assert!(!r.ok);
        // nothing was applied, nothing was maintained
        let r = s.run(&Request::eval(Lang::Calc, "{[x:U, y:U] | G(x, y)}"));
        assert_eq!(r.relations[0].rows.len(), 2);
        let r = s.run(&Request {
            op: Op::Stats,
            ..Request::default()
        });
        assert_eq!(r.stats.as_ref().unwrap().views[0].maintain_calls, 0);
    }

    #[test]
    fn durable_views_checkpoint_and_replay_from_log_tail() {
        let dir = std::env::temp_dir().join(format!("nestdb_run_ivm_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let s = Session::default();
        assert!(
            s.run(&Request {
                op: Op::Open,
                text: dir.display().to_string(),
                ..Request::default()
            })
            .ok
        );
        for clause in ["schema G(U, U).", "G('a', 'b')."] {
            assert!(
                s.run(&Request {
                    op: Op::Insert,
                    text: clause.into(),
                    ..Request::default()
                })
                .ok
            );
        }
        assert!(
            s.run(&Request {
                op: Op::Materialize,
                view: "paths".into(),
                text: TC_SRC.into(),
                ..Request::default()
            })
            .ok
        );
        let r = s.run(&Request {
            op: Op::Save,
            ..Request::default()
        });
        assert!(r.ok, "{:?}", r.error);
        assert!(
            r.message.as_ref().unwrap().contains("1 views checkpointed"),
            "{:?}",
            r.message
        );
        // mutate past the checkpoint: this lands only in the log tail
        assert!(
            s.run(&Request {
                op: Op::Insert,
                text: "G('b', 'c').".into(),
                ..Request::default()
            })
            .ok
        );

        // a fresh session restores the checkpoint and replays the tail
        let s2 = Session::default();
        let r = s2.run(&Request {
            op: Op::Open,
            text: dir.display().to_string(),
            ..Request::default()
        });
        assert!(r.ok, "{:?}", r.error);
        let msg = r.message.as_ref().unwrap();
        assert!(msg.contains("views restored: 1"), "{msg}");
        assert!(msg.contains("1 log clauses replayed"), "{msg}");
        // deleting the replayed edge retracts exactly the tc facts it
        // supported — proof the restored state includes the tail
        let r = s2.run(&Request {
            op: Op::Update,
            text: "delete G('b', 'c').".into(),
            ..Request::default()
        });
        assert!(r.ok, "{:?}", r.error);
        let removed = &r.deltas[0].removed[0];
        assert_eq!(removed.rows.len(), 2, "(b,c) and (a,c): {:?}", removed.rows);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
