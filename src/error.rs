//! A unified error type over every evaluation engine.
//!
//! Each engine crate keeps its own structured error (`EvalError`,
//! `AlgebraError`, `ProgramError`, `StratifyError`) — those stay the
//! precise, matchable types for callers working against a single engine.
//! [`Error`] wraps them for callers going through [`crate::Session`], so a
//! shell, a test harness, or an embedding application can hold one error
//! type regardless of which engine produced it, walk the underlying engine
//! error via [`std::error::Error::source`], and ask the one question that
//! is engine-independent: *did a resource budget trip?* — via the stable
//! [`Error::is_resource_trip`] predicate.

use no_algebra::AlgebraError;
use no_analysis::DiagnosticsError;
use no_core::EvalError;
use no_datalog::{ProgramError, SimEvalError, StratifyError};
use no_object::ResourceError;
use no_storage::StorageError;
use std::fmt;

/// Any failure from any evaluation engine, as surfaced by
/// [`crate::Session`].
#[derive(Debug, Clone, PartialEq)]
pub enum Error {
    /// The CALC evaluator failed (parse/shape/budget/…).
    Calc(EvalError),
    /// The algebra evaluator failed.
    Algebra(AlgebraError),
    /// The Datalog¬ evaluator failed.
    Datalog(ProgramError),
    /// Stratification failed or a stratum's evaluation failed.
    Stratify(StratifyError),
    /// The simultaneous-fixpoint translation or its evaluation failed.
    Simultaneous(SimEvalError),
    /// Static analysis found errors, so evaluation was refused (raised by
    /// [`crate::Session::eval_calc_checked`]).
    Diagnostics(DiagnosticsError),
    /// The durable storage layer failed (I/O, on-disk corruption, an
    /// invalid mutation, or a budget trip while replaying recovery).
    Storage(StorageError),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Calc(e) => write!(f, "calc: {e}"),
            Error::Algebra(e) => write!(f, "algebra: {e}"),
            Error::Datalog(e) => write!(f, "datalog: {e}"),
            Error::Stratify(e) => write!(f, "stratify: {e}"),
            Error::Simultaneous(e) => write!(f, "simultaneous: {e}"),
            Error::Diagnostics(e) => write!(f, "analysis: {e}"),
            Error::Storage(e) => write!(f, "storage: {e}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Calc(e) => Some(e),
            Error::Algebra(e) => Some(e),
            Error::Datalog(e) => Some(e),
            Error::Stratify(e) => Some(e),
            Error::Simultaneous(e) => Some(e),
            Error::Diagnostics(e) => Some(e),
            Error::Storage(e) => Some(e),
        }
    }
}

impl From<EvalError> for Error {
    fn from(e: EvalError) -> Self {
        Error::Calc(e)
    }
}

impl From<AlgebraError> for Error {
    fn from(e: AlgebraError) -> Self {
        Error::Algebra(e)
    }
}

impl From<ProgramError> for Error {
    fn from(e: ProgramError) -> Self {
        Error::Datalog(e)
    }
}

impl From<StratifyError> for Error {
    fn from(e: StratifyError) -> Self {
        Error::Stratify(e)
    }
}

impl From<SimEvalError> for Error {
    fn from(e: SimEvalError) -> Self {
        Error::Simultaneous(e)
    }
}

impl From<DiagnosticsError> for Error {
    fn from(e: DiagnosticsError) -> Self {
        Error::Diagnostics(e)
    }
}

impl From<StorageError> for Error {
    fn from(e: StorageError) -> Self {
        Error::Storage(e)
    }
}

impl From<no_plan::PlanError> for Error {
    fn from(e: no_plan::PlanError) -> Self {
        // Planned evaluation wraps the same engine errors the tree-walk
        // paths raise; unwrap back to the matching variant so callers see
        // identical errors regardless of which path ran.
        match e {
            no_plan::PlanError::Calc(e) => Error::Calc(e),
            no_plan::PlanError::Algebra(e) => Error::Algebra(e),
            no_plan::PlanError::Datalog(e) => Error::Datalog(e),
            no_plan::PlanError::Stratify(e) => Error::Stratify(e),
            no_plan::PlanError::Simultaneous(e) => Error::Simultaneous(e),
            no_plan::PlanError::Unsupported(what) => {
                Error::Calc(EvalError::ShapeError(format!("unplannable: {what}")))
            }
        }
    }
}

impl Error {
    /// The [`ResourceError`] behind this failure, if a governor budget
    /// (steps, range, memory, iterations, deadline, or cancellation)
    /// tripped — digging through however many engine layers wrap it.
    pub fn resource(&self) -> Option<&ResourceError> {
        match self {
            Error::Calc(EvalError::Resource(r)) => Some(r),
            Error::Calc(_) => None,
            Error::Algebra(AlgebraError::Resource(r)) => Some(r),
            Error::Algebra(_) => None,
            Error::Datalog(ProgramError::Resource(r)) => Some(r),
            Error::Datalog(_) => None,
            Error::Stratify(StratifyError::Program(ProgramError::Resource(r))) => Some(r),
            Error::Stratify(_) => None,
            Error::Simultaneous(SimEvalError::Eval(EvalError::Resource(r))) => Some(r),
            Error::Simultaneous(_) => None,
            // Analysis never evaluates, so it can never trip a budget.
            Error::Diagnostics(_) => None,
            // Recovery replay charges the governor for rebuilt arenas.
            Error::Storage(StorageError::Resource(r)) => Some(r),
            Error::Storage(_) => None,
        }
    }

    /// True when the failure is a resource-budget trip rather than a
    /// genuine query error. Stable across engines: callers branch on this
    /// to distinguish "query too expensive under current budgets" from
    /// "query is wrong".
    pub fn is_resource_trip(&self) -> bool {
        self.resource().is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use no_object::{BudgetKind, Governor, Limits};

    fn tripped() -> ResourceError {
        let g = Governor::new(Limits {
            max_steps: 0,
            ..Limits::unlimited()
        });
        match g.tick("test.site") {
            Err(e) => e,
            Ok(()) => panic!("zero fuel must trip"),
        }
    }

    #[test]
    fn resource_trips_detected_through_every_wrapper() {
        let r = tripped();
        let cases: Vec<Error> = vec![
            EvalError::Resource(r.clone()).into(),
            AlgebraError::Resource(r.clone()).into(),
            ProgramError::Resource(r.clone()).into(),
            StratifyError::Program(ProgramError::Resource(r.clone())).into(),
            SimEvalError::Eval(EvalError::Resource(r.clone())).into(),
            StorageError::Resource(r.clone()).into(),
        ];
        for e in cases {
            assert!(e.is_resource_trip(), "{e}");
            assert_eq!(e.resource().unwrap().budget, BudgetKind::Steps);
        }
    }

    #[test]
    fn non_resource_errors_are_not_trips() {
        let e: Error = EvalError::UnboundVariable("x".into()).into();
        assert!(!e.is_resource_trip());
        assert!(e.resource().is_none());
        let e: Error = StorageError::Invalid {
            detail: "unknown relation".into(),
        }
        .into();
        assert!(!e.is_resource_trip());
        assert!(e.to_string().starts_with("storage: "), "{e}");
    }

    #[test]
    fn source_chain_reaches_the_engine_error() {
        use std::error::Error as _;
        let e: Error = EvalError::UnboundVariable("x".into()).into();
        let src = e.source().expect("wraps an engine error");
        assert!(src.to_string().contains('x'));
    }

    #[test]
    fn diagnostics_variant_chains_and_never_trips() {
        use no_analysis::{Diagnostic, DiagnosticsError, Severity};
        use std::error::Error as _;
        let e: Error = DiagnosticsError {
            diagnostics: vec![Diagnostic::new(
                "TY004",
                Severity::Error,
                "variable w is unbound",
            )],
        }
        .into();
        assert!(e.to_string().starts_with("analysis: "), "{e}");
        assert!(!e.is_resource_trip());
        let src = e.source().expect("wraps the diagnostics error");
        assert!(src.to_string().contains("TY004"), "{src}");
    }
}
